"""Structured event journal: the narrative half of the observability plane.

Where the metrics registry answers "how much / how fast", the event log
answers "what happened, in what order, to which request".  Every lifecycle
transition — service admission, dispatcher enqueue/dequeue, run start/finish,
wave completion, cache eviction, catalog busy-retry, slow op, error — emits
one typed JSONL line into ``<workspace>/events.jsonl``:

    {"ts": 1754650000.12, "seq": 41, "type": "dispatch_dequeue",
     "cid": "req-000007-alice", "tenant": "alice", "span": "",
     "wait_s": 0.004}

The journal is bounded: when the active file exceeds ``max_bytes`` it is
rotated to ``events.jsonl.1`` with ``os.replace`` (one generation kept), so a
long-lived service never grows it without bound.  Writes happen under a lock
as a single buffered write + flush per line, so concurrent emitters never
tear a line and a reader tailing the file sees only whole records (the last
line may be mid-write; readers skip unparsable trailing data).

Correlation IDs tie the story together.  The dispatcher stamps each admitted
request with a fresh ID and wraps its execution in :func:`correlation_scope`;
everything emitted on that thread (and on the materializer thread, which
inherits the ID through the write queue) carries the same ``cid``, so one
``grep`` over the journal reconstructs a request end-to-end across scheduler,
cache, and catalog.  The current span path from :mod:`repro.obs.spans` is
attached automatically.

An :class:`EventLog` rides on the metrics registry (``registry.event_log``,
mirroring ``registry.slow_op_log``) so every layer that already holds a
registry gains event emission without new plumbing; layers call
:func:`events_for`, which returns the shared :data:`NULL_EVENT_LOG` no-op
when no journal is attached — disabled observability stays a branch, which
is how the event log lives under the same <2% overhead bar as the metrics.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "Event",
    "EventLog",
    "NULL_EVENT_LOG",
    "EVENT_TYPES",
    "RESERVED_EVENT_KEYS",
    "correlation_scope",
    "current_correlation_id",
    "events_for",
    "events_path",
    "read_events",
    "runs_from_events",
]

EVENTS_FILENAME = "events.jsonl"

#: Default size cap before the journal rotates (bytes).
DEFAULT_MAX_BYTES = 4 * 1024 * 1024

#: Keys owned by the envelope; ``emit(**fields)`` may not reuse them.
RESERVED_EVENT_KEYS = frozenset({"ts", "seq", "type", "cid", "tenant", "span"})

#: The typed vocabulary.  Emitters are not restricted to this set, but every
#: type the runtime produces is listed here so tooling (and the docs table)
#: has one source of truth.
EVENT_TYPES = (
    "run_start",        # a session run began (workflow, iteration)
    "run_finish",       # ... and completed (seconds, nodes run/reused)
    "run_error",        # ... or raised (error repr)
    "wave_finish",      # one scheduler wave drained (wave index, tasks, seconds)
    "service_admit",    # dispatcher accepted a request for a tenant
    "service_reject",   # dispatcher refused a request (reason)
    "dispatch_enqueue", # request queued (queue depth after enqueue)
    "dispatch_dequeue", # worker picked the request up (queue wait seconds)
    "dispatch_finish",  # request finished (ok flag, total seconds)
    "cache_evict",      # shared cache evicted an artifact (signature, bytes)
    "cache_admission_reject",  # admission controller refused an oversized artifact
    "catalog_busy",     # catalog hit a locked database and retried
    "slow_op",          # a span blew past its rolling-p95 slow threshold
    "error",            # any other recorded failure
)

_local = threading.local()


def current_correlation_id() -> Optional[str]:
    """The correlation ID bound to this thread, or ``None`` outside a scope."""
    return getattr(_local, "cid", None)


class correlation_scope:
    """Bind ``cid`` to the current thread for the duration of a block.

    Scopes nest: the previous ID (usually ``None``) is restored on exit.
    Events emitted without an explicit ``cid`` pick up the bound one, which
    is how worker- and materializer-thread events join their request's story.
    """

    __slots__ = ("cid", "_previous")

    def __init__(self, cid: Optional[str]) -> None:
        self.cid = cid
        self._previous: Optional[str] = None

    def __enter__(self) -> "correlation_scope":
        self._previous = getattr(_local, "cid", None)
        _local.cid = self.cid
        return self

    def __exit__(self, *exc) -> None:
        _local.cid = self._previous


def _current_span_path() -> str:
    # Lazy import: spans imports events at module load for slow-op emission,
    # so the reverse edge must resolve at call time.
    from repro.obs.spans import current_span_path

    return current_span_path()


@dataclass(frozen=True)
class Event:
    """One journal record: a typed envelope plus free-form payload fields."""

    type: str
    ts: float = 0.0
    seq: int = 0
    cid: str = ""
    tenant: str = ""
    span: str = ""
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON object: envelope keys first, payload fields merged in."""
        record: Dict[str, Any] = {
            "ts": self.ts,
            "seq": self.seq,
            "type": self.type,
            "cid": self.cid,
            "tenant": self.tenant,
            "span": self.span,
        }
        for key, value in self.data.items():
            if key not in RESERVED_EVENT_KEYS:
                record[key] = value
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Event":
        data = {k: v for k, v in record.items() if k not in RESERVED_EVENT_KEYS}
        return cls(
            type=str(record.get("type", "")),
            ts=float(record.get("ts", 0.0)),
            seq=int(record.get("seq", 0)),
            cid=str(record.get("cid", "")),
            tenant=str(record.get("tenant", "")),
            span=str(record.get("span", "")),
            data=data,
        )

    def to_line(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_line(cls, line: str) -> Optional["Event"]:
        """Parse one journal line; ``None`` for blank or torn lines."""
        line = line.strip()
        if not line:
            return None
        try:
            record = json.loads(line)
        except (ValueError, TypeError):
            return None
        if not isinstance(record, dict):
            return None
        return cls.from_dict(record)


class EventLog:
    """Bounded, thread-safe JSONL journal with single-generation rotation.

    ``emit`` appends one line under a lock and flushes it, then rotates the
    file to ``<path>.1`` once it exceeds ``max_bytes`` — so the on-disk
    footprint is at most ~2x the cap and an acked event survives exactly one
    rotation before the next one may drop it.  ``seq`` increases monotonically
    per log, so readers can both order events and detect what rotation
    discarded.  A disabled log (:data:`NULL_EVENT_LOG`) makes ``emit`` a
    branch and nothing else.
    """

    def __init__(
        self,
        path: Optional[str],
        max_bytes: int = DEFAULT_MAX_BYTES,
        enabled: bool = True,
    ) -> None:
        self.path = path
        self.max_bytes = int(max_bytes)
        self.enabled = bool(enabled) and path is not None
        self._lock = threading.Lock()
        self._handle = None
        self._seq = 0

    # -- writing --------------------------------------------------------------

    def emit(
        self,
        type: str,
        tenant: str = "",
        cid: Optional[str] = None,
        **fields: Any,
    ) -> Optional[Event]:
        """Append one event; returns it, or ``None`` when the log is off.

        ``cid`` defaults to the thread's bound correlation ID and ``span``
        to the current span path.  ``fields`` become payload keys and must
        not collide with the envelope (:data:`RESERVED_EVENT_KEYS`).
        """
        if not self.enabled:
            return None
        clash = RESERVED_EVENT_KEYS.intersection(fields)
        if clash:
            raise ValueError(f"event fields shadow envelope keys: {sorted(clash)}")
        if cid is None:
            cid = current_correlation_id() or ""
        with self._lock:
            self._seq += 1
            event = Event(
                type=type,
                ts=time.time(),
                seq=self._seq,
                cid=cid,
                tenant=str(tenant or ""),
                span=_current_span_path(),
                data=dict(fields),
            )
            self._write_locked(event.to_line())
        return event

    def _write_locked(self, line: str) -> None:
        handle = self._handle
        if handle is None:
            handle = open(self.path, "a", encoding="utf-8")
            self._handle = handle
        handle.write(line + "\n")
        handle.flush()
        if handle.tell() >= self.max_bytes:
            self._rotate_locked()

    def _rotate_locked(self) -> None:
        handle = self._handle
        if handle is not None:
            handle.close()
            self._handle = None
        try:
            os.replace(self.path, self.path + ".1")
        except OSError:
            pass  # rotation is best-effort; keep appending to the live file

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # -- reading --------------------------------------------------------------

    def tail(
        self,
        limit: Optional[int] = None,
        pattern: Optional[str] = None,
        type: Optional[str] = None,
        cid: Optional[str] = None,
    ) -> List[Event]:
        """The last ``limit`` events (rotated generation included), filtered."""
        if self.path is None:
            return []
        return read_events(
            self.path, limit=limit, pattern=pattern, type=type, cid=cid
        )

    @property
    def emitted(self) -> int:
        """Events acked by this process (not what survives rotation)."""
        return self._seq


#: Shared always-disabled log: ``emit`` is a branch, readers see nothing.
NULL_EVENT_LOG = EventLog(path=None, enabled=False)


def events_path(workspace: str) -> str:
    """Journal location for a workspace/service root."""
    return os.path.join(workspace, EVENTS_FILENAME)


def events_for(registry) -> EventLog:
    """The event log riding on ``registry``, or the shared no-op log.

    The registry is the carrier (``registry.event_log``, installed by the
    session or service that owns the journal) so scheduler, cache, catalog,
    and dispatcher emit events through the registry handle they already hold.
    """
    log = getattr(registry, "event_log", None)
    return log if log is not None else NULL_EVENT_LOG


def _journal_files(path: str) -> List[str]:
    return [p for p in (path + ".1", path) if os.path.exists(p)]


def read_events(
    path: str,
    limit: Optional[int] = None,
    pattern: Optional[str] = None,
    type: Optional[str] = None,
    cid: Optional[str] = None,
) -> List[Event]:
    """Read the journal at ``path`` (rotated generation first), filtered.

    ``pattern`` is a regex matched against the raw JSON line; torn or
    non-JSON lines (a reader can catch the writer mid-line) are skipped.
    """
    matcher = re.compile(pattern) if pattern else None
    events: List[Event] = []
    for file_path in _journal_files(path):
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    if matcher is not None and not matcher.search(line):
                        continue
                    event = Event.from_line(line)
                    if event is None:
                        continue
                    if type is not None and event.type != type:
                        continue
                    if cid is not None and event.cid != cid:
                        continue
                    events.append(event)
        except OSError:
            continue
    events.sort(key=lambda e: (e.ts, e.seq))
    if limit is not None and limit >= 0:
        events = events[-limit:]
    return events


def runs_from_events(events: Iterable[Event]) -> List[Dict[str, Any]]:
    """Per-correlation-ID run summaries derived from lifecycle events.

    Groups ``run_start``/``run_finish``/``run_error`` (and the dispatcher
    lifecycle around them) by ``cid`` — the data behind the ``/runs``
    endpoint and the doctor's triage.
    """
    runs: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for event in events:
        key = event.cid or f"(uncorrelated-{event.seq})"
        summary = runs.get(key)
        if summary is None:
            summary = {
                "cid": event.cid,
                "tenant": event.tenant,
                "status": "pending",
                "started_ts": None,
                "finished_ts": None,
                "seconds": None,
                "events": 0,
                "types": {},
            }
            runs[key] = summary
            order.append(key)
        summary["events"] += 1
        summary["types"][event.type] = summary["types"].get(event.type, 0) + 1
        if event.tenant and not summary["tenant"]:
            summary["tenant"] = event.tenant
        if event.type in ("run_start", "dispatch_dequeue"):
            summary["status"] = "running"
            if summary["started_ts"] is None:
                summary["started_ts"] = event.ts
        elif event.type in ("run_finish", "dispatch_finish"):
            ok = event.data.get("ok", True)
            summary["status"] = "finished" if ok else "failed"
            summary["finished_ts"] = event.ts
            seconds = event.data.get("seconds")
            if isinstance(seconds, (int, float)):
                summary["seconds"] = float(seconds)
        elif event.type in ("run_error", "service_reject"):
            summary["status"] = "failed"
            summary["finished_ts"] = event.ts
            if "error" in event.data:
                summary["error"] = event.data["error"]
    return [runs[key] for key in order]
