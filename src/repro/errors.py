"""Exception hierarchy for the Helix reproduction.

All library-specific errors derive from :class:`HelixError` so callers can
catch a single base class at API boundaries while still being able to
distinguish failure modes precisely.
"""

from __future__ import annotations


class HelixError(Exception):
    """Base class for every error raised by this library."""


class GraphError(HelixError):
    """Raised for structural problems in a workflow DAG."""


class CycleError(GraphError):
    """Raised when an operation would introduce (or encounters) a cycle."""


class UnknownNodeError(GraphError):
    """Raised when a node name is referenced but not present in the DAG."""


class DuplicateNodeError(GraphError):
    """Raised when a node name is declared more than once."""


class WorkflowError(HelixError):
    """Raised for invalid declarations in the DSL layer."""


class CompilationError(HelixError):
    """Raised when a workflow cannot be compiled into an operator DAG."""


class PlanError(HelixError):
    """Raised when a physical plan is inconsistent or cannot be executed."""


class ExecutionError(HelixError):
    """Raised when an operator fails during execution."""


class StorageError(HelixError):
    """Raised for artifact-store failures (missing artifacts, I/O errors)."""


class BudgetExceededError(StorageError):
    """Raised when a write would exceed the configured storage budget."""


class OptimizerError(HelixError):
    """Raised when an optimizer receives inconsistent inputs."""


class InfeasiblePlanError(OptimizerError):
    """Raised when no feasible state assignment exists (should not happen

    for well-formed inputs because every node can always be computed)."""


class DataError(HelixError):
    """Raised for malformed data collections or schema mismatches."""


class MLError(HelixError):
    """Raised by the machine-learning substrate (bad shapes, unfitted models)."""


class NotFittedError(MLError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


class VersioningError(HelixError):
    """Raised by the workflow version store."""
