"""Workflow versioning: the data layer behind the paper's Versions/Metrics UI.

The demo's GUI lets users browse workflow versions, compare two versions
(code + DAG, git-style), and plot evaluation metrics across iterations.  This
package implements the underlying model: a :class:`~repro.versioning.version_store.VersionStore`
recording one :class:`~repro.versioning.version_store.WorkflowVersion` per
executed iteration, structural comparison between versions, and metric-trend
aggregation.
"""

from repro.versioning.diff import VersionComparison, compare_versions, render_comparison
from repro.versioning.metrics_tracker import MetricsTracker
from repro.versioning.persistence import (
    load_cost_history,
    load_version_store,
    save_cost_history,
    save_version_store,
)
from repro.versioning.version_store import VersionStore, WorkflowVersion

__all__ = [
    "WorkflowVersion",
    "VersionStore",
    "VersionComparison",
    "compare_versions",
    "render_comparison",
    "MetricsTracker",
    "save_version_store",
    "load_version_store",
    "save_cost_history",
    "load_cost_history",
]
