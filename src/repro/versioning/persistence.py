"""Persistence of the version store (and run history) to the workspace.

The demo keeps workflow versions across sessions so users can browse and roll
back later.  This module serializes :class:`~repro.versioning.version_store.VersionStore`
records and the measured cost history to JSON files inside a workspace
directory, and restores them when a :class:`~repro.core.session.HelixSession`
reopens that workspace.  Attached ``Workflow`` objects are *not* serialized
(operators may close over arbitrary UDFs); a restored version therefore
supports browsing, diffing, and metric queries, but not ``checkout``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.errors import VersioningError
from repro.execution.stats import RunHistory
from repro.optimizer.cost_model import CostRecord
from repro.versioning.version_store import VersionStore, WorkflowVersion

VERSIONS_FILENAME = "versions.json"
HISTORY_FILENAME = "cost_history.json"


# ---------------------------------------------------------------------------
# Version store
# ---------------------------------------------------------------------------
def version_to_dict(version: WorkflowVersion) -> Dict:
    """JSON-ready representation of one version (without the workflow object)."""
    return {
        "version_id": version.version_id,
        "workflow_name": version.workflow_name,
        "description": version.description,
        "change_category": version.change_category,
        "created_at": version.created_at,
        "signatures": version.signatures,
        "edges": [list(edge) for edge in version.edges],
        "outputs": version.outputs,
        "operator_summaries": version.operator_summaries,
        "categories": version.categories,
        "metrics": version.metrics,
        "runtime": version.runtime,
        "parent_id": version.parent_id,
        "dsl_text": version.dsl_text,
    }


def version_from_dict(payload: Dict) -> WorkflowVersion:
    return WorkflowVersion(
        version_id=payload["version_id"],
        workflow_name=payload["workflow_name"],
        description=payload.get("description", ""),
        change_category=payload.get("change_category", ""),
        created_at=payload.get("created_at", 0.0),
        signatures=dict(payload.get("signatures", {})),
        edges=[tuple(edge) for edge in payload.get("edges", [])],
        outputs=list(payload.get("outputs", [])),
        operator_summaries=dict(payload.get("operator_summaries", {})),
        categories=dict(payload.get("categories", {})),
        metrics=dict(payload.get("metrics", {})),
        runtime=payload.get("runtime", 0.0),
        parent_id=payload.get("parent_id"),
        dsl_text=payload.get("dsl_text", ""),
        workflow=None,
    )


def save_version_store(store: VersionStore, workspace: str) -> str:
    """Write all versions to ``<workspace>/versions.json``; returns the path."""
    path = os.path.join(workspace, VERSIONS_FILENAME)
    payload = [version_to_dict(version) for version in store.all()]
    try:
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
    except OSError as exc:
        raise VersioningError(f"cannot write version store to {path}: {exc}") from exc
    return path


def load_version_store(workspace: str) -> VersionStore:
    """Load a version store previously saved in ``workspace`` (empty if none)."""
    path = os.path.join(workspace, VERSIONS_FILENAME)
    store = VersionStore()
    if not os.path.exists(path):
        return store
    try:
        with open(path, "r") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise VersioningError(f"cannot read version store from {path}: {exc}") from exc
    # Re-insert in version-id order so new ids continue the sequence.
    for entry in sorted(payload, key=lambda item: item["version_id"]):
        store._versions.append(version_from_dict(entry))
    return store


# ---------------------------------------------------------------------------
# Cost history
# ---------------------------------------------------------------------------
def save_cost_history(history: RunHistory, workspace: str) -> str:
    """Persist the signature → measured-cost database (not the full reports)."""
    path = os.path.join(workspace, HISTORY_FILENAME)
    payload = {
        signature: {
            "compute_cost": record.compute_cost,
            "output_size": record.output_size,
            "operator_type": record.operator_type,
        }
        for signature, record in history.cost_records().items()
    }
    try:
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
    except OSError as exc:
        raise VersioningError(f"cannot write cost history to {path}: {exc}") from exc
    return path


def load_cost_history(workspace: str) -> Dict[str, CostRecord]:
    """Load the persisted cost database (empty dict if none exists)."""
    path = os.path.join(workspace, HISTORY_FILENAME)
    if not os.path.exists(path):
        return {}
    try:
        with open(path, "r") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise VersioningError(f"cannot read cost history from {path}: {exc}") from exc
    return {
        signature: CostRecord(
            compute_cost=entry.get("compute_cost", 0.0),
            output_size=entry.get("output_size", 0.0),
            operator_type=entry.get("operator_type", ""),
        )
        for signature, entry in payload.items()
    }
