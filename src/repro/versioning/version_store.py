"""Version store: one record per executed workflow iteration."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler.codegen import CompiledWorkflow
from repro.dsl.workflow import Workflow
from repro.errors import VersioningError
from repro.execution.stats import IterationReport


@dataclass
class WorkflowVersion:
    """A snapshot of a workflow iteration: structure, provenance, and outcomes."""

    version_id: int
    workflow_name: str
    description: str
    change_category: str
    created_at: float
    signatures: Dict[str, str]
    edges: List[Tuple[str, str]]
    outputs: List[str]
    operator_summaries: Dict[str, str]
    categories: Dict[str, str]
    metrics: Dict[str, float] = field(default_factory=dict)
    runtime: float = 0.0
    parent_id: Optional[int] = None
    dsl_text: str = ""
    workflow: Optional[Workflow] = None  # kept in memory for instant checkout

    def label(self) -> str:
        return f"v{self.version_id}"


class VersionStore:
    """In-memory (session-scoped) store of workflow versions.

    Mirrors the paper's version browser: versions form a chain (or tree, when
    the user rolls back and branches), each carrying its metrics and runtime
    so the Metrics tab can plot trends and jump to the best version.
    """

    def __init__(self) -> None:
        self._versions: List[WorkflowVersion] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        compiled: CompiledWorkflow,
        report: Optional[IterationReport] = None,
        description: str = "",
        change_category: str = "",
        workflow: Optional[Workflow] = None,
        parent_id: Optional[int] = None,
    ) -> WorkflowVersion:
        """Create and store a new version from a compiled workflow and its report."""
        version = WorkflowVersion(
            version_id=len(self._versions) + 1,
            workflow_name=compiled.workflow_name,
            description=description,
            change_category=change_category,
            created_at=time.time(),
            signatures=dict(compiled.signatures),
            edges=list(compiled.dag.edges()),
            outputs=list(compiled.outputs),
            operator_summaries={name: compiled.operator(name).describe() for name in compiled.nodes()},
            categories={name: category.value for name, category in compiled.categories.items()},
            metrics=dict(report.metrics) if report else {},
            runtime=report.total_runtime if report else 0.0,
            parent_id=parent_id if parent_id is not None else (self._versions[-1].version_id if self._versions else None),
            dsl_text=workflow.describe() if workflow is not None else "",
            workflow=workflow,
        )
        self._versions.append(version)
        return version

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def get(self, version_id: int) -> WorkflowVersion:
        for version in self._versions:
            if version.version_id == version_id:
                return version
        raise VersioningError(f"unknown version id {version_id}")

    def latest(self) -> WorkflowVersion:
        if not self._versions:
            raise VersioningError("no versions recorded yet")
        return self._versions[-1]

    def all(self) -> List[WorkflowVersion]:
        return list(self._versions)

    def __len__(self) -> int:
        return len(self._versions)

    def best_version(self, metric: str, higher_is_better: bool = True) -> WorkflowVersion:
        """The version with the best value of ``metric`` (the UI's shortcut button)."""
        candidates = [version for version in self._versions if metric in version.metrics]
        if not candidates:
            raise VersioningError(f"no version has metric {metric!r}")
        key = lambda version: version.metrics[metric]
        return max(candidates, key=key) if higher_is_better else min(candidates, key=key)

    def checkout(self, version_id: int) -> Workflow:
        """Return the workflow object behind a version (for roll-back-and-branch)."""
        version = self.get(version_id)
        if version.workflow is None:
            raise VersioningError(f"version {version_id} has no attached workflow object")
        return version.workflow.copy()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def log(self) -> str:
        """A commit-log style listing, newest first."""
        lines = []
        for version in reversed(self._versions):
            metrics = ", ".join(f"{key}={value:.4f}" for key, value in sorted(version.metrics.items()))
            lines.append(
                f"{version.label()}  [{version.change_category or '-'}]  {version.description or '(no description)'}"
                f"  runtime={version.runtime:.3f}s  {metrics}"
            )
        return "\n".join(lines) if lines else "(no versions)"
