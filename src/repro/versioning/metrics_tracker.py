"""Metric-trend aggregation across workflow versions (the Metrics tab)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import VersioningError
from repro.versioning.version_store import VersionStore, WorkflowVersion


class MetricsTracker:
    """Aggregates evaluation metrics across versions into plottable series."""

    def __init__(self, store: VersionStore) -> None:
        self.store = store

    def metric_names(self) -> List[str]:
        names = set()
        for version in self.store.all():
            names.update(version.metrics)
        return sorted(names)

    def series(self, metric: str) -> List[Tuple[int, float]]:
        """(version id, value) points for one metric, in version order."""
        points = [
            (version.version_id, version.metrics[metric])
            for version in self.store.all()
            if metric in version.metrics
        ]
        if not points:
            raise VersioningError(f"no version has metric {metric!r}")
        return points

    def runtime_series(self) -> List[Tuple[int, float]]:
        return [(version.version_id, version.runtime) for version in self.store.all()]

    def table(self, metrics: Optional[Sequence[str]] = None) -> List[Dict[str, object]]:
        """One row per version with the requested metric columns."""
        metrics = list(metrics) if metrics is not None else self.metric_names()
        rows = []
        for version in self.store.all():
            row: Dict[str, object] = {
                "version": version.version_id,
                "description": version.description,
                "category": version.change_category,
                "runtime": round(version.runtime, 4),
            }
            for metric in metrics:
                row[metric] = round(version.metrics[metric], 4) if metric in version.metrics else None
            rows.append(row)
        return rows

    def best(self, metric: str, higher_is_better: bool = True) -> WorkflowVersion:
        return self.store.best_version(metric, higher_is_better=higher_is_better)

    def ascii_plot(self, metric: str, width: int = 50) -> str:
        """A minimal textual sparkline of a metric trend across versions."""
        points = self.series(metric)
        values = [value for _vid, value in points]
        low, high = min(values), max(values)
        span = (high - low) or 1.0
        lines = [f"{metric} across versions (min={low:.4f}, max={high:.4f})"]
        for version_id, value in points:
            bar = int(round((value - low) / span * width))
            lines.append(f"  v{version_id:<3} {'#' * bar}{' ' if bar else ''}{value:.4f}")
        return "\n".join(lines)
