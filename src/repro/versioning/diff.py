"""Structural and metric comparison between two workflow versions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.versioning.version_store import WorkflowVersion


@dataclass
class VersionComparison:
    """Git-style comparison of two versions (the UI's comparative view)."""

    left: WorkflowVersion
    right: WorkflowVersion
    added_nodes: List[str] = field(default_factory=list)
    removed_nodes: List[str] = field(default_factory=list)
    changed_nodes: List[str] = field(default_factory=list)
    unchanged_nodes: List[str] = field(default_factory=list)
    added_edges: List[Tuple[str, str]] = field(default_factory=list)
    removed_edges: List[Tuple[str, str]] = field(default_factory=list)
    metric_deltas: Dict[str, float] = field(default_factory=dict)
    runtime_delta: float = 0.0

    def n_structural_changes(self) -> int:
        return len(self.added_nodes) + len(self.removed_nodes) + len(self.changed_nodes)


def compare_versions(left: WorkflowVersion, right: WorkflowVersion) -> VersionComparison:
    """Compare ``left`` (older) and ``right`` (newer) versions node by node.

    A node present in both versions counts as changed when its signature
    differs; because signatures include upstream structure, a single edited
    operator marks itself and its affected descendants as changed — exactly
    the dependency-based invalidation the change tracker performs.
    """
    comparison = VersionComparison(left=left, right=right)
    left_nodes = set(left.signatures)
    right_nodes = set(right.signatures)
    comparison.added_nodes = sorted(right_nodes - left_nodes)
    comparison.removed_nodes = sorted(left_nodes - right_nodes)
    for name in sorted(left_nodes & right_nodes):
        if left.signatures[name] == right.signatures[name]:
            comparison.unchanged_nodes.append(name)
        else:
            comparison.changed_nodes.append(name)

    left_edges = set(left.edges)
    right_edges = set(right.edges)
    comparison.added_edges = sorted(right_edges - left_edges)
    comparison.removed_edges = sorted(left_edges - right_edges)

    for metric in sorted(set(left.metrics) | set(right.metrics)):
        comparison.metric_deltas[metric] = right.metrics.get(metric, 0.0) - left.metrics.get(metric, 0.0)
    comparison.runtime_delta = right.runtime - left.runtime
    return comparison


def render_comparison(comparison: VersionComparison) -> str:
    """Plain-text rendering of a comparison, with +/-/~ markers like Figure 1a."""
    left, right = comparison.left, comparison.right
    lines = [f"Comparing {left.label()} -> {right.label()}  ({left.workflow_name})"]
    for name in comparison.added_nodes:
        lines.append(f"  + {name}: {right.operator_summaries.get(name, '')}")
    for name in comparison.removed_nodes:
        lines.append(f"  - {name}: {left.operator_summaries.get(name, '')}")
    for name in comparison.changed_nodes:
        lines.append(
            f"  ~ {name}: {left.operator_summaries.get(name, '')} -> {right.operator_summaries.get(name, '')}"
        )
    if not comparison.n_structural_changes():
        lines.append("  (no structural changes)")
    if comparison.metric_deltas:
        lines.append("  metrics:")
        for metric, delta in comparison.metric_deltas.items():
            lines.append(f"    {metric}: {left.metrics.get(metric, 0.0):.4f} -> {right.metrics.get(metric, 0.0):.4f} ({delta:+.4f})")
    lines.append(f"  runtime: {left.runtime:.3f}s -> {right.runtime:.3f}s ({comparison.runtime_delta:+.3f}s)")
    return "\n".join(lines)
