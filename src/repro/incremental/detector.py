"""Chunk-level change detection on workflow inputs.

Helix's reuse machinery keys everything on node signatures, which is exactly
right when *code* changes between iterations — but when *data* changes, the
source signature flips and every downstream artifact is invalidated even if
99% of the rows are byte-identical.  The :class:`DeltaDetector` closes that
gap: it fingerprints an input value chunk by chunk (the same row-aligned
chunks :func:`repro.partition.chunks.split_value` produces) and classifies
each chunk as ``clean``/``dirty``/``new``/``removed`` against the fingerprint
recorded for the previous run.

Two properties make the classification usable downstream:

* **Stable boundaries.**  Balanced ``block_slices`` boundaries shift when a
  single row is appended, which would mark every chunk dirty.  The detector
  therefore re-uses the *previous* run's per-chunk row counts for chunks
  ``0..n-2`` and stretches only the tail chunk — append-mostly feeds keep
  their prefix chunks byte-stable.  Shrunk inputs fall back to balanced
  boundaries (everything dirty), which is always safe.
* **Content, not position.**  A chunk is clean when its digest matches *any*
  previous chunk's digest, recorded as a ``remap`` (new index → old index).
  Rolling windows that advance by exactly one chunk therefore re-use
  ``n - 1`` chunks shifted by one, not zero.

The append fast path keeps one streaming digest over all prefix chunks: when
it matches the stored ``prefix_digest``, the per-chunk digests for the prefix
are copied from the previous fingerprint and only the tail chunk is hashed
chunk-wise.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.partition.chunks import Shape, _block_counts, axis_rows

#: Chunk classification statuses.
CLEAN = "clean"
DIRTY = "dirty"
NEW = "new"

#: Separators folded into digests between rows and between axes, so that
#: moving a row across an axis boundary can never collide with the unmoved
#: layout.
_ROW_SEP = b"\x1e"
_AXIS_SEP = b"\x1d"


def _hash_rows(hasher: "hashlib._Hash", rows: Sequence[Any]) -> None:
    for row in rows:
        hasher.update(repr(row).encode("utf-8", "backslashreplace"))
        hasher.update(_ROW_SEP)


@dataclass(frozen=True)
class ChunkFingerprint:
    """Content identity of one chunk: per-axis row counts plus a sha256."""

    axis_counts: Tuple[int, ...]
    digest: str


@dataclass
class InputFingerprint:
    """Per-chunk fingerprints of one input node's value for one run."""

    input_key: str
    signature: str
    chunks: List[ChunkFingerprint]
    prefix_digest: str = ""
    run_iteration: int = 0

    @property
    def chunk_count(self) -> int:
        return len(self.chunks)

    def boundaries(self) -> Shape:
        """Per-axis per-chunk row counts (the :data:`Shape` of this split)."""
        n_axes = len(self.chunks[0].axis_counts) if self.chunks else 0
        return tuple(
            tuple(chunk.axis_counts[axis] for chunk in self.chunks) for axis in range(n_axes)
        )


@dataclass
class InputDelta:
    """Chunk-wise diff of one input against its previous fingerprint."""

    input_key: str
    node: str
    old_signature: str
    new_signature: str
    statuses: List[str]
    remap: Dict[int, int]
    boundaries: Shape
    mode: str
    removed_chunks: int = 0
    fingerprint: Optional[InputFingerprint] = field(default=None, repr=False)

    @property
    def chunk_count(self) -> int:
        return len(self.statuses)

    @property
    def clean_chunks(self) -> int:
        return sum(1 for status in self.statuses if status == CLEAN)

    @property
    def dirty_chunks(self) -> int:
        return self.chunk_count - self.clean_chunks

    @property
    def dirty_fraction(self) -> float:
        if not self.statuses:
            return 1.0
        return self.dirty_chunks / self.chunk_count


class DeltaDetector:
    """Fingerprints input values and diffs them against the previous run."""

    def __init__(self, n_partitions: int) -> None:
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        self.n_partitions = n_partitions

    # -- boundary selection -------------------------------------------------
    def _stable_boundaries(
        self, axes: List[List[Any]], previous: Optional[InputFingerprint]
    ) -> Shape:
        """Chunk boundaries for the new value.

        Keeps the previous run's counts for chunks ``0..n-2`` whenever each
        axis is at least as long as that prefix (append-mostly and equal-size
        rolling feeds), so prefix chunks stay byte-stable.  Otherwise falls
        back to balanced blocks.
        """
        n = self.n_partitions
        if previous is not None and previous.chunk_count == n and n > 0:
            old = previous.boundaries()
            if len(old) == len(axes):
                stretched: List[Tuple[int, ...]] = []
                for axis_index, rows in enumerate(axes):
                    prefix = old[axis_index][:-1]
                    tail = len(rows) - sum(prefix)
                    if tail < 0:
                        break
                    stretched.append(tuple(prefix) + (tail,))
                else:
                    return tuple(stretched)
        return tuple(_block_counts(len(rows), n) for rows in axes)

    # -- fingerprinting -----------------------------------------------------
    def _chunk_digest(self, axes: List[List[Any]], starts: List[int], counts: Sequence[int]) -> str:
        hasher = hashlib.sha256()
        for axis_index, rows in enumerate(axes):
            start = starts[axis_index]
            _hash_rows(hasher, rows[start:start + counts[axis_index]])
            hasher.update(_AXIS_SEP)
        return hasher.hexdigest()

    def _prefix_digest(self, axes: List[List[Any]], boundaries: Shape) -> str:
        """One streaming digest over all rows of chunks ``0..n-2``."""
        hasher = hashlib.sha256()
        for axis_index, rows in enumerate(axes):
            prefix = sum(boundaries[axis_index][:-1])
            _hash_rows(hasher, rows[:prefix])
            hasher.update(_AXIS_SEP)
        return hasher.hexdigest()

    def fingerprint(
        self,
        input_key: str,
        value: Any,
        signature: str,
        previous: Optional[InputFingerprint] = None,
        run_iteration: int = 0,
    ) -> Optional[InputFingerprint]:
        """Per-chunk fingerprint of ``value``, or ``None`` if not row-shaped."""
        axes = axis_rows(value)
        if axes is None:
            return None
        boundaries = self._stable_boundaries(axes, previous)
        n = self.n_partitions
        prefix_digest = self._prefix_digest(axes, boundaries)

        chunks: List[ChunkFingerprint] = []
        starts = [0 for _ in axes]
        fast_prefix = (
            previous is not None
            and previous.prefix_digest == prefix_digest
            and previous.chunk_count == n
            and all(
                tuple(boundaries[a][:-1]) == tuple(previous.boundaries()[a][:-1])
                for a in range(len(axes))
            )
        )
        for index in range(n):
            counts = [boundaries[a][index] for a in range(len(axes))]
            if fast_prefix and index < n - 1 and previous is not None:
                chunks.append(previous.chunks[index])
            else:
                chunks.append(
                    ChunkFingerprint(
                        axis_counts=tuple(counts),
                        digest=self._chunk_digest(axes, starts, counts),
                    )
                )
            for axis_index in range(len(axes)):
                starts[axis_index] += counts[axis_index]
        return InputFingerprint(
            input_key=input_key,
            signature=signature,
            chunks=chunks,
            prefix_digest=prefix_digest,
            run_iteration=run_iteration,
        )

    # -- classification -----------------------------------------------------
    @staticmethod
    def _classify_mode(statuses: Sequence[str], remap: Dict[int, int]) -> str:
        n = len(statuses)
        clean = [i for i, status in enumerate(statuses) if status == CLEAN]
        if not clean:
            return "full"
        if len(clean) == n:
            return "unchanged"
        shifts = {remap[i] - i for i in clean}
        if shifts == {0} and clean == list(range(n - 1)):
            return "append"
        if len(shifts) == 1 and next(iter(shifts)) > 0:
            return "rolling"
        return "mixed"

    def detect(
        self,
        input_key: str,
        node: str,
        value: Any,
        new_signature: str,
        previous: Optional[InputFingerprint],
        run_iteration: int = 0,
    ) -> Optional[InputDelta]:
        """Diff ``value`` against ``previous``; ``None`` if not row-shaped.

        With no previous fingerprint every chunk is ``new`` (mode
        ``initial``) — callers still get the fresh fingerprint to record.
        """
        fingerprint = self.fingerprint(
            input_key, value, new_signature, previous=previous, run_iteration=run_iteration
        )
        if fingerprint is None:
            return None
        n = fingerprint.chunk_count
        if previous is None:
            return InputDelta(
                input_key=input_key,
                node=node,
                old_signature="",
                new_signature=new_signature,
                statuses=[NEW] * n,
                remap={},
                boundaries=fingerprint.boundaries(),
                mode="initial",
                fingerprint=fingerprint,
            )
        old_by_digest: Dict[str, int] = {}
        for index, chunk in enumerate(previous.chunks):
            old_by_digest.setdefault(chunk.digest, index)
        statuses: List[str] = []
        remap: Dict[int, int] = {}
        claimed: set = set()
        for index, chunk in enumerate(fingerprint.chunks):
            old_index = old_by_digest.get(chunk.digest)
            if old_index is None:
                statuses.append(DIRTY)
            else:
                statuses.append(CLEAN)
                remap[index] = old_index
                claimed.add(old_index)
        # An unclaimed old chunk only counts as *removed* when its position
        # wasn't simply rewritten in place (a dirty new chunk at the same
        # index supersedes it); rolled-off window chunks do count.
        removed = sum(
            1
            for index in range(previous.chunk_count)
            if index not in claimed and (index >= n or statuses[index] == CLEAN)
        )
        return InputDelta(
            input_key=input_key,
            node=node,
            old_signature=previous.signature,
            new_signature=new_signature,
            statuses=statuses,
            remap=remap,
            boundaries=fingerprint.boundaries(),
            mode=self._classify_mode(statuses, remap),
            removed_chunks=removed,
            fingerprint=fingerprint,
        )
