"""Delta-driven incremental recomputation.

Helix's signature-keyed reuse handles *code* changes between iterations; this
package handles *data* changes: when an input's rows change between runs, it
detects which row chunks actually changed (:mod:`~repro.incremental.detector`),
propagates chunk dirtiness through the DAG under recovered previous-run
signatures (:mod:`~repro.incremental.propagate`), and plans which stored chunk
artifacts can stand in for clean chunks (:mod:`~repro.incremental.planner`) so
the optimizer can price "recompute dirty + load clean + merge" against a full
recompute per node.
"""

from repro.incremental.detector import (
    ChunkFingerprint,
    DeltaDetector,
    InputDelta,
    InputFingerprint,
)
from repro.incremental.planner import DeltaPlan, DeltaPlanner, NodeDeltaPlan
from repro.incremental.propagate import DirtyPropagator, NodeDelta

__all__ = [
    "ChunkFingerprint",
    "DeltaDetector",
    "DeltaPlan",
    "DeltaPlanner",
    "DirtyPropagator",
    "InputDelta",
    "InputFingerprint",
    "NodeDelta",
    "NodeDeltaPlan",
]
