"""Delta planning: turn input diffs into an executable chunk-reuse plan.

The :class:`DeltaPlanner` is the subsystem's front door, called by
:class:`~repro.core.session.HelixSession` once per run before cost
estimation:

1. Every **root** operator whose signature has no artifact in the store is
   computed eagerly (roots are data readers — cheap next to the ML pipeline
   below them) and fingerprinted chunk-by-chunk against the ``input_deltas``
   catalog table.
2. The :class:`~repro.incremental.propagate.DirtyPropagator` turns the input
   diffs into per-node chunk dirtiness under recovered *old* signatures.
3. For every chunk-scope node the planner checks which clean chunks actually
   have an old-signature chunk artifact in the store, producing a
   :class:`NodeDeltaPlan` (reusable chunk map + byte totals) — or widening
   the node to full recompute when nothing is reusable.

The result feeds three consumers: :class:`~repro.optimizer.cost_model.
CostEstimator` prices delta-vs-full from :meth:`DeltaPlan.hints`; the
scheduler seeds root values and pre-loads reusable chunks for nodes the
optimizer chose ``"delta"`` for; the run trace records the verdicts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.compiler.codegen import CompiledWorkflow
from repro.errors import StorageError
from repro.incremental.detector import (
    CLEAN,
    ChunkFingerprint,
    DeltaDetector,
    InputDelta,
    InputFingerprint,
)
from repro.incremental.propagate import DirtyPropagator, NODE_SCOPE
from repro.obs.registry import get_registry
from repro.optimizer.cost_model import DeltaHint
from repro.partition.chunks import PartitionedValue, split_value
from repro.partition.planner import PartitionPlanner
from repro.storage.catalog import chunk_signature


@dataclass
class NodeDeltaPlan:
    """Executable chunk reuse for one node the optimizer may run as delta."""

    node: str
    old_signature: str
    new_signature: str
    chunk_count: int
    statuses: List[str]
    reuse: Dict[int, int]  # new chunk index -> old chunk index with an artifact
    reusable_bytes: float
    reason: str
    memory_resident: bool = False

    @property
    def dirty_indices(self) -> List[int]:
        return [i for i in range(self.chunk_count) if i not in self.reuse]


@dataclass
class DeltaPlan:
    """Everything the session, optimizer, and scheduler need for one run."""

    n_partitions: int
    inputs: Dict[str, InputDelta] = field(default_factory=dict)
    candidates: Dict[str, NodeDeltaPlan] = field(default_factory=dict)
    widened: Dict[str, str] = field(default_factory=dict)
    seeds: Dict[str, PartitionedValue] = field(default_factory=dict)
    seed_times: Dict[str, float] = field(default_factory=dict)

    def hints(self) -> Dict[str, DeltaHint]:
        """Per-node pricing inputs for :meth:`CostEstimator.estimate`."""
        return {
            name: DeltaHint(
                chunk_count=plan.chunk_count,
                dirty_chunks=plan.chunk_count - len(plan.reuse),
                reusable_chunks=len(plan.reuse),
                reusable_bytes=plan.reusable_bytes,
                old_signature=plan.old_signature,
                memory_resident=plan.memory_resident,
            )
            for name, plan in self.candidates.items()
        }

    def reuse_for(self, name: str, costs: Dict[str, Any]) -> Optional[NodeDeltaPlan]:
        """The node's reuse plan iff the optimizer chose the delta strategy."""
        plan = self.candidates.get(name)
        if plan is None:
            return None
        node_costs = costs.get(name)
        if node_costs is None or getattr(node_costs, "delta_strategy", "") != "delta":
            return None
        return plan


def _fingerprint_from_row(input_key: str, raw: Dict[str, Any]) -> InputFingerprint:
    return InputFingerprint(
        input_key=input_key,
        signature=raw["signature"],
        chunks=[
            ChunkFingerprint(axis_counts=tuple(counts), digest=digest)
            for counts, digest in raw["chunks"]
        ],
        prefix_digest=raw.get("prefix_digest", ""),
        run_iteration=raw.get("run_iteration", 0),
    )


class DeltaPlanner:
    """Builds the :class:`DeltaPlan` for one compiled workflow run."""

    def __init__(
        self,
        n_partitions: int,
        partition_planner: Optional[PartitionPlanner] = None,
        metrics=None,
    ) -> None:
        self.n_partitions = n_partitions
        self.detector = DeltaDetector(n_partitions)
        self.propagator = DirtyPropagator(partition_planner or PartitionPlanner(n_partitions))
        self.metrics = metrics if metrics is not None else get_registry()

    def _root_needs_compute(self, store: Any, signature: str) -> bool:
        """True when neither a monolithic artifact nor a complete chunk
        family exists for the root — i.e. the input (or its params) changed."""
        if store.has(signature):
            return False
        for count, indices in store.chunk_families(signature).items():
            if len(indices) == count:
                return False
        return True

    def plan(
        self,
        compiled: CompiledWorkflow,
        store: Any,
        run_iteration: int = 0,
        recorded_at: float = 0.0,
    ) -> Optional[DeltaPlan]:
        """Detect input deltas and plan chunk reuse; ``None`` when the store
        has no SQLite catalog (JSON workspaces) or no root changed."""
        db = getattr(store, "catalog_db", None)
        if db is None:
            return None
        plan = DeltaPlan(n_partitions=self.n_partitions)
        for root in compiled.dag.topological_order():
            if compiled.dag.parents(root):
                continue
            signature = compiled.signature_of(root)
            if not self._root_needs_compute(store, signature):
                continue
            input_key = f"{compiled.workflow_name}:{root}"
            previous: Optional[InputFingerprint] = None
            try:
                raw = db.input_fingerprint(input_key)
            except StorageError:
                raw = None
            if raw is not None:
                previous = _fingerprint_from_row(input_key, raw)
            operator = compiled.operator(root)
            started = time.perf_counter()
            value = operator.apply({})
            elapsed = time.perf_counter() - started
            delta = self.detector.detect(
                input_key, root, value, signature, previous, run_iteration=run_iteration
            )
            if delta is None or delta.fingerprint is None:
                continue  # not row-shaped: nothing chunk-wise to say
            try:
                db.record_input_fingerprint(
                    input_key,
                    signature,
                    run_iteration,
                    recorded_at,
                    [(chunk.axis_counts, chunk.digest) for chunk in delta.fingerprint.chunks],
                    prefix_digest=delta.fingerprint.prefix_digest,
                )
            except StorageError:
                pass  # fingerprinting is advisory; never fail the run
            if previous is None:
                # First sighting of this input: the fingerprint is recorded
                # for the next run to diff against, but the run itself stays
                # byte-for-byte the non-incremental execution (no seeding).
                continue
            chunks = split_value(value, self.n_partitions, shape=delta.boundaries)
            if chunks is None:
                continue
            plan.seeds[root] = PartitionedValue(chunks)
            plan.seed_times[root] = elapsed
            plan.inputs[root] = delta
        if not plan.seeds:
            return None
        self._plan_reuse(compiled, store, plan)
        if self.metrics.enabled:
            self.metrics.counter(
                "repro_incremental_plans_total",
                help="Delta plans produced (at least one changed root detected).",
            ).inc()
            if plan.candidates:
                self.metrics.counter(
                    "repro_incremental_candidates_total",
                    help="Nodes offered chunk-level delta reuse by the planner.",
                ).inc(len(plan.candidates))
                self.metrics.counter(
                    "repro_incremental_reusable_chunks_total",
                    help="Clean chunks the planner mapped to stored artifacts.",
                ).inc(sum(len(c.reuse) for c in plan.candidates.values()))
            if plan.widened:
                self.metrics.counter(
                    "repro_incremental_widened_total",
                    help="Nodes whose delta widened to a full recompute.",
                ).inc(len(plan.widened))
        return plan

    def _plan_reuse(self, compiled: CompiledWorkflow, store: Any, plan: DeltaPlan) -> None:
        diffable = {
            name: delta for name, delta in plan.inputs.items() if delta.old_signature
        }
        if not diffable:
            return
        node_deltas = self.propagator.propagate(compiled, diffable, self.n_partitions)
        try:
            catalog = store.catalog()
        except StorageError:
            catalog = {}
        for name, delta in node_deltas.items():
            if name in plan.seeds:
                continue  # the seeded root itself needs no reuse
            if delta.scope == NODE_SCOPE:
                plan.widened[name] = delta.reason
                continue
            reuse: Dict[int, int] = {}
            reusable_bytes = 0.0
            statuses = list(delta.statuses)
            tier_of = getattr(store, "tier_of", None)
            in_memory = tier_of is not None
            for index in delta.clean_indices:
                old_index = delta.remap[index]
                key = chunk_signature(delta.old_signature, old_index, self.n_partitions)
                meta = catalog.get(key)
                if meta is None:
                    statuses[index] = "dirty"  # clean but nothing stored to load
                    continue
                reuse[index] = old_index
                reusable_bytes += float(meta.size)
                in_memory = in_memory and tier_of(key) == "memory"
            if not reuse:
                plan.widened[name] = "no stored chunks under previous signature"
                continue
            plan.candidates[name] = NodeDeltaPlan(
                node=name,
                old_signature=delta.old_signature,
                new_signature=delta.new_signature,
                chunk_count=self.n_partitions,
                statuses=statuses,
                reuse=reuse,
                reusable_bytes=reusable_bytes,
                reason=delta.reason,
                memory_resident=in_memory,
            )
