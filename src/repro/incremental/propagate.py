"""Chunk-wise dirtiness propagation through a compiled DAG.

Once the :class:`~repro.incremental.detector.DeltaDetector` has classified an
input's chunks, two questions remain before any artifact can be re-used:

1. **What was each downstream node's signature on the previous run?**  The
   new input signature changed every downstream signature, so the store is
   keyed under *old* signatures we no longer have.  The propagator recovers
   them with a *shadow walk*: it re-runs :func:`node_signature` over the DAG
   in topological order, feeding each node its parents' **old** signatures,
   with the roots seeded from the previous fingerprints.  If an operator's
   own params changed since the previous run, the reconstructed shadow
   signature simply won't exist in the store and the node falls back to full
   recompute — the walk is safe by construction.
2. **Which chunks of each node are dirty?**  Dirtiness flows along the same
   channels the partition planner uses for execution: ``PARTITIONWISE``
   operators map chunk *i* of their inputs to chunk *i* of their output, so
   they inherit per-chunk dirtiness 1:1 (intersecting the clean remaps of
   all delta-carrying parents); ``SHUFFLE``/``COMBINE``/``SINGLE`` operators
   mix rows across chunks, so any dirty parent widens them to whole-node
   dirtiness — and everything downstream of a widened node is dirty too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.compiler.codegen import CompiledWorkflow, node_signature
from repro.incremental.detector import CLEAN, DIRTY, InputDelta
from repro.partition.planner import PartitionMode, PartitionPlanner

#: How far a node's dirtiness is resolved.
CHUNK_SCOPE = "chunk"
NODE_SCOPE = "node"


@dataclass
class NodeDelta:
    """Dirtiness of one DAG node, chunk-wise where the mode allows it."""

    node: str
    old_signature: str
    new_signature: str
    statuses: List[str]
    remap: Dict[int, int]
    scope: str
    reason: str

    @property
    def chunk_count(self) -> int:
        return len(self.statuses)

    @property
    def clean_indices(self) -> List[int]:
        return [i for i, status in enumerate(self.statuses) if status == CLEAN]

    @property
    def dirty_chunks(self) -> int:
        return sum(1 for status in self.statuses if status != CLEAN)


class DirtyPropagator:
    """Propagates input chunk dirtiness through signatures and partitions."""

    def __init__(self, planner: Optional[PartitionPlanner] = None) -> None:
        self.planner = planner or PartitionPlanner(1)

    def shadow_signatures(
        self, compiled: CompiledWorkflow, root_old_signatures: Dict[str, str]
    ) -> Dict[str, str]:
        """Previous-run signature of every node reachable from the roots.

        Nodes whose roots all kept their signature shadow to their current
        signature; nodes depending on an unshadowed root are skipped.
        """
        shadows: Dict[str, str] = {}
        for name in compiled.dag.topological_order():
            parents = compiled.dag.parents(name)
            if not parents:
                shadows[name] = root_old_signatures.get(name, compiled.signature_of(name))
                continue
            if any(parent not in shadows for parent in parents):
                continue
            operator = compiled.operator(name)
            shadows[name] = node_signature(
                operator, [shadows[parent] for parent in operator.dependencies()]
            )
        return shadows

    def propagate(
        self,
        compiled: CompiledWorkflow,
        input_deltas: Dict[str, InputDelta],
        n_partitions: int,
    ) -> Dict[str, NodeDelta]:
        """Chunk-wise dirtiness for every node whose signature changed.

        Nodes untouched by the input change (shadow signature == current
        signature) are *not* reported — the ordinary same-signature reuse
        path already covers them.
        """
        roots = {
            name: delta.old_signature
            for name, delta in input_deltas.items()
            if delta.old_signature
        }
        shadows = self.shadow_signatures(compiled, roots)
        deltas: Dict[str, NodeDelta] = {}
        for name in compiled.dag.topological_order():
            if name not in shadows:
                continue
            new_signature = compiled.signature_of(name)
            old_signature = shadows[name]
            if old_signature == new_signature:
                continue  # untouched by the change; normal reuse applies
            if name in input_deltas:
                source = input_deltas[name]
                deltas[name] = NodeDelta(
                    node=name,
                    old_signature=old_signature,
                    new_signature=new_signature,
                    statuses=[CLEAN if s == CLEAN else DIRTY for s in source.statuses],
                    remap=dict(source.remap),
                    scope=CHUNK_SCOPE,
                    reason=f"input delta ({source.mode})",
                )
                continue
            parents = compiled.dag.parents(name)
            merged = self._merge_parents(name, parents, shadows, compiled, deltas, n_partitions)
            if merged is None:
                continue
            statuses, remap, widen_reason = merged
            mode = self.planner.mode_for(compiled.operator(name))
            if widen_reason is None and mode != PartitionMode.PARTITIONWISE:
                widen_reason = f"{mode.value} mode widens to whole node"
            if widen_reason is not None:
                deltas[name] = NodeDelta(
                    node=name,
                    old_signature=old_signature,
                    new_signature=new_signature,
                    statuses=[DIRTY] * n_partitions,
                    remap={},
                    scope=NODE_SCOPE,
                    reason=widen_reason,
                )
            else:
                deltas[name] = NodeDelta(
                    node=name,
                    old_signature=old_signature,
                    new_signature=new_signature,
                    statuses=statuses,
                    remap=remap,
                    scope=CHUNK_SCOPE,
                    reason="partitionwise",
                )
        return deltas

    @staticmethod
    def _merge_parents(
        name: str,
        parents: List[str],
        shadows: Dict[str, str],
        compiled: CompiledWorkflow,
        deltas: Dict[str, NodeDelta],
        n_partitions: int,
    ):
        """Fold parent dirtiness into ``(statuses, remap, widen_reason)``.

        Returns ``None`` when nothing upstream changed (cannot happen when
        this node's signature changed, but kept as a guard).  A clean chunk
        must be clean in *every* delta-carrying parent and all parents must
        agree on its old-index remap; parents that kept their signature are
        clean everywhere with an identity remap.
        """
        statuses = [CLEAN] * n_partitions
        # Old chunk index each clean output chunk must come from; None means
        # no parent has constrained it yet.  An untouched parent's chunk i is
        # its own old chunk i, so it pins the remap to identity; a delta
        # parent pins it to its clean-chunk remap.  Disagreement means the
        # merged input rows are not any old chunk's rows: recompute.
        required: List[Optional[int]] = [None] * n_partitions
        saw_delta = False
        for parent in parents:
            delta = deltas.get(parent)
            if delta is None:
                if shadows.get(parent) != compiled.signature_of(parent):
                    return statuses, {}, f"parent {parent!r} changed without chunk delta"
                constraints = {i: i for i in range(n_partitions)}
            else:
                saw_delta = True
                if delta.scope == NODE_SCOPE:
                    return statuses, {}, f"parent {parent!r} dirty node-wide ({delta.reason})"
                if delta.chunk_count != n_partitions:
                    return statuses, {}, f"parent {parent!r} chunk count mismatch"
                constraints = {
                    i: delta.remap[i]
                    for i in range(n_partitions)
                    if delta.statuses[i] == CLEAN
                }
            for index in range(n_partitions):
                if statuses[index] != CLEAN:
                    continue
                old_index = constraints.get(index)
                if old_index is None:
                    statuses[index] = DIRTY
                elif required[index] is None:
                    required[index] = old_index
                elif required[index] != old_index:
                    statuses[index] = DIRTY
        if not saw_delta:
            return statuses, {}, "operator params changed"
        remap = {
            index: required[index]
            for index in range(n_partitions)
            if statuses[index] == CLEAN and required[index] is not None
        }
        for index in range(n_partitions):
            if statuses[index] == CLEAN and index not in remap:
                statuses[index] = DIRTY  # never constrained: nothing to reuse
        return statuses, remap, None
