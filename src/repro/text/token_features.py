"""Token-level feature extractors for the person-mention IE task.

Each function maps a token (in its sentence context) to a dictionary of named
features.  The extractor operators in :mod:`repro.dsl.ie_operators` wrap these
functions as DAG nodes, which is exactly where the iterative "add a feature"
changes of the IE workload land.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Sequence, Set

_DIGITS = re.compile(r"\d")

#: Honorifics that frequently precede a person mention.
HONORIFICS = {"mr", "mrs", "ms", "dr", "prof", "president", "senator", "gov", "rep", "judge"}


def word_shape(token: str) -> str:
    """Collapse a token into a shape string: ``Xx`` for ``Doris``, ``dd`` for ``42``."""
    shape_chars = []
    for char in token:
        if char.isupper():
            shape_chars.append("X")
        elif char.islower():
            shape_chars.append("x")
        elif char.isdigit():
            shape_chars.append("d")
        else:
            shape_chars.append(char)
    # Collapse runs so shapes stay low-cardinality.
    collapsed: List[str] = []
    for char in shape_chars:
        if not collapsed or collapsed[-1] != char:
            collapsed.append(char)
    return "".join(collapsed)


def shape_features(tokens: Sequence[str], position: int) -> Dict[str, float]:
    """Orthographic features of the token at ``position``."""
    token = tokens[position]
    features: Dict[str, float] = {
        f"word={token.lower()}": 1.0,
        f"shape={word_shape(token)}": 1.0,
        f"suffix3={token[-3:].lower()}": 1.0,
        f"prefix2={token[:2].lower()}": 1.0,
    }
    if token[:1].isupper():
        features["is_capitalized"] = 1.0
    if token.isupper() and len(token) > 1:
        features["is_all_caps"] = 1.0
    if _DIGITS.search(token):
        features["has_digit"] = 1.0
    if position == 0:
        features["sentence_start"] = 1.0
    return features


def context_window_features(tokens: Sequence[str], position: int, window: int = 1) -> Dict[str, float]:
    """Lowercased neighbour-word features within ``window`` positions."""
    features: Dict[str, float] = {}
    for offset in range(-window, window + 1):
        if offset == 0:
            continue
        neighbor = position + offset
        if 0 <= neighbor < len(tokens):
            features[f"ctx[{offset}]={tokens[neighbor].lower()}"] = 1.0
        else:
            features[f"ctx[{offset}]=<PAD>"] = 1.0
    previous = tokens[position - 1].lower().rstrip(".") if position > 0 else ""
    if previous in HONORIFICS:
        features["prev_is_honorific"] = 1.0
    return features


def gazetteer_features(
    tokens: Sequence[str],
    position: int,
    first_names: Set[str],
    last_names: Set[str],
) -> Dict[str, float]:
    """Dictionary-lookup features against first/last name gazetteers."""
    token = tokens[position].lower()
    features: Dict[str, float] = {}
    if token in first_names:
        features["in_first_name_gazetteer"] = 1.0
    if token in last_names:
        features["in_last_name_gazetteer"] = 1.0
    if position + 1 < len(tokens) and tokens[position + 1].lower() in last_names and token in first_names:
        features["first_then_last"] = 1.0
    return features
