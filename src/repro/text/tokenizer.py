"""Rule-based tokenization and sentence splitting."""

from __future__ import annotations

import re
from typing import List

_TOKEN_PATTERN = re.compile(r"[A-Za-z]+(?:'[A-Za-z]+)?|\d+(?:\.\d+)?|[.,!?;:()\"'%$-]")
_SENTENCE_BOUNDARY = re.compile(r"(?<=[.!?])\s+(?=[A-Z\"'])")

#: Common abbreviations that should not terminate a sentence.
_ABBREVIATIONS = {"mr.", "mrs.", "ms.", "dr.", "prof.", "sen.", "gov.", "rep.", "st.", "u.s.", "inc.", "co."}


def tokenize(text: str) -> List[str]:
    """Split ``text`` into word, number, and punctuation tokens."""
    return _TOKEN_PATTERN.findall(text)


def sentence_split(text: str) -> List[str]:
    """Split ``text`` into sentences on terminal punctuation.

    A candidate boundary is rejected when the preceding token is a known
    abbreviation (``Mr.``, ``Dr.`` ...), which is enough fidelity for the
    synthetic news corpus used by the IE workload.
    """
    if not text.strip():
        return []
    pieces = _SENTENCE_BOUNDARY.split(text.strip())
    sentences: List[str] = []
    buffer = ""
    for piece in pieces:
        candidate = (buffer + " " + piece).strip() if buffer else piece.strip()
        last_word = candidate.split()[-1].lower() if candidate.split() else ""
        if last_word in _ABBREVIATIONS:
            buffer = candidate
            continue
        sentences.append(candidate)
        buffer = ""
    if buffer:
        sentences.append(buffer)
    return [s for s in sentences if s]


def tokenize_document(text: str) -> List[List[str]]:
    """Sentence-split then tokenize: one token list per sentence."""
    return [tokenize(sentence) for sentence in sentence_split(text) if tokenize(sentence)]
