"""Token- and character-level n-gram helpers."""

from __future__ import annotations

from typing import Dict, List, Sequence


def token_ngrams(tokens: Sequence[str], n: int = 2, separator: str = "_") -> List[str]:
    """Contiguous ``n``-grams over a token sequence, joined by ``separator``."""
    if n <= 0:
        raise ValueError("n must be positive")
    if len(tokens) < n:
        return []
    return [separator.join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def character_ngrams(token: str, n: int = 3, pad: bool = True) -> List[str]:
    """Character ``n``-grams of one token, optionally padded with ``^``/``$``."""
    if n <= 0:
        raise ValueError("n must be positive")
    text = f"^{token}$" if pad else token
    if len(text) < n:
        return [text]
    return [text[i : i + n] for i in range(len(text) - n + 1)]


def ngram_counts(tokens: Sequence[str], n: int = 2) -> Dict[str, int]:
    """Bag-of-n-grams counts used by document-level feature extractors."""
    counts: Dict[str, int] = {}
    for gram in token_ngrams(tokens, n=n):
        counts[gram] = counts.get(gram, 0) + 1
    return counts
