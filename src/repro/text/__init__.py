"""Text-processing substrate for the information-extraction workload.

The paper's IE application runs over unstructured news articles and needs
tokenization, sentence splitting, and token-level feature extraction (word
shape, context windows, gazetteers) before a sequence learner can be trained.
The original system leans on JVM NLP libraries; this package implements the
required pieces directly.
"""

from repro.text.tokenizer import sentence_split, tokenize, tokenize_document
from repro.text.ngrams import character_ngrams, token_ngrams
from repro.text.token_features import (
    context_window_features,
    gazetteer_features,
    shape_features,
)

__all__ = [
    "tokenize",
    "sentence_split",
    "tokenize_document",
    "token_ngrams",
    "character_ngrams",
    "shape_features",
    "context_window_features",
    "gazetteer_features",
]
