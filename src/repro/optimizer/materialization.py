"""The materialization problem: which intermediates to persist, online, under a budget.

As each operator finishes, Helix must decide *immediately* whether to persist
its output (deferring would require caching many large intermediates).  The
paper's online cost model approximates the benefit of materializing node
``n_i`` at iteration ``t`` for iteration ``t+1`` as

    r_i = 2·l_i − (c_i + Σ_{n_j ∈ A(n_i)} c_j)

(the factor 2 accounts for paying roughly one load-equivalent to write now
plus one load next iteration, versus recomputing the node and its ancestors).
Materialize iff ``r_i < 0`` and the artifact fits the remaining budget.

This module also provides the comparison policies: materialize-all
(DeepDive), materialize-none (KeystoneML), and an offline knapsack oracle that
assumes everything materialized now is reusable next iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Set

from repro.errors import OptimizerError
from repro.graph.dag import Dag
from repro.optimizer.cost_model import NodeCosts
from repro.optimizer.knapsack import KnapsackItem, knapsack_select


@dataclass
class MaterializationDecision:
    """The outcome of one online decision, kept for reports and tests."""

    node: str
    materialize: bool
    score: float
    size: float
    remaining_budget: float
    reason: str = ""


def ancestor_compute_total(dag: Dag, costs: Mapping[str, NodeCosts], node: str) -> float:
    """``c_i + Σ_{n_j ∈ A(n_i)} c_j``: cost to recompute ``node`` from scratch."""
    total = costs[node].compute_cost
    for ancestor in dag.ancestors(node):
        total += costs[ancestor].compute_cost
    return total


def reuse_benefit(dag: Dag, costs: Mapping[str, NodeCosts], node: str) -> float:
    """Savings next iteration from loading ``node`` instead of recomputing it."""
    return max(0.0, ancestor_compute_total(dag, costs, node) - costs[node].load_cost)


def per_chunk_costs(costs: Mapping[str, NodeCosts], node: str, n_chunks: int) -> Dict[str, NodeCosts]:
    """Cost view in which ``node``'s own entry is scaled to one partition chunk.

    This is how the online materialization policies become partition-aware:
    the scheduler asks for one decision *per chunk* against this view, so a
    chunk's load benefit (``l_i / n``) is weighed against recomputing that
    chunk, and the budget-fit check sees the chunk's size rather than the
    whole artifact's — a large artifact whose chunks fit individually can be
    materialized partially, chunk by chunk, until the budget runs out.
    Ancestor compute costs stay at full value: recomputing any missing chunk
    still requires the ancestors' (chunked) outputs to exist.

    A delta-strategy node's ``compute_cost`` is the discounted "recompute
    dirty + load clean" price, which would *understate* the value of
    materializing its chunks (once written under the new signature, a future
    run loads them instead of paying the full pipeline again).  The per-chunk
    view therefore splits the undiscounted ``full_compute_cost`` for delta
    nodes, carrying the ``delta_*`` verdict through unchanged.
    """
    if n_chunks < 1:
        raise OptimizerError(f"need at least one chunk, got {n_chunks}")
    view = dict(costs)
    base = costs[node]
    compute = base.compute_cost
    if base.delta_strategy == "delta":
        compute = base.full_compute_cost or base.compute_cost
    view[node] = NodeCosts(
        compute_cost=compute / n_chunks,
        load_cost=base.load_cost / n_chunks,
        output_size=base.output_size / n_chunks,
        materialized=base.materialized,
        chunk_count=base.chunk_count,
        chunks_present=base.chunks_present,
        full_compute_cost=(base.full_compute_cost or base.compute_cost) / n_chunks,
        delta_strategy=base.delta_strategy,
        delta_chunk_count=base.delta_chunk_count,
        delta_dirty_chunks=base.delta_dirty_chunks,
        delta_reusable_chunks=base.delta_reusable_chunks,
        delta_savings=base.delta_savings / n_chunks,
    )
    return view


class MaterializationPolicy:
    """Interface for online materialization decisions."""

    name = "base"

    def decide(
        self,
        node: str,
        dag: Dag,
        costs: Mapping[str, NodeCosts],
        remaining_budget: float,
    ) -> MaterializationDecision:
        raise NotImplementedError


class HelixOnlineMaterializer(MaterializationPolicy):
    """The paper's online cost-model policy (Section 2.3)."""

    name = "helix_online"

    def decide(
        self,
        node: str,
        dag: Dag,
        costs: Mapping[str, NodeCosts],
        remaining_budget: float,
    ) -> MaterializationDecision:
        node_costs = costs[node]
        recompute_cost = ancestor_compute_total(dag, costs, node)
        score = 2.0 * node_costs.load_cost - recompute_cost
        fits = node_costs.output_size <= remaining_budget
        materialize = score < 0.0 and fits
        if not fits:
            reason = "over budget"
        elif materialize:
            reason = f"r_i={score:.4f} < 0"
        else:
            reason = f"r_i={score:.4f} >= 0"
        return MaterializationDecision(
            node=node,
            materialize=materialize,
            score=score,
            size=node_costs.output_size,
            remaining_budget=remaining_budget,
            reason=reason,
        )


class MaterializeAll(MaterializationPolicy):
    """Persist every intermediate that fits (DeepDive's approach)."""

    name = "materialize_all"

    def decide(
        self,
        node: str,
        dag: Dag,
        costs: Mapping[str, NodeCosts],
        remaining_budget: float,
    ) -> MaterializationDecision:
        size = costs[node].output_size
        fits = size <= remaining_budget
        return MaterializationDecision(
            node=node,
            materialize=fits,
            score=float("-inf"),
            size=size,
            remaining_budget=remaining_budget,
            reason="materialize-all" if fits else "over budget",
        )


class MaterializeNone(MaterializationPolicy):
    """Never persist anything (KeystoneML-style one-shot execution)."""

    name = "materialize_none"

    def decide(
        self,
        node: str,
        dag: Dag,
        costs: Mapping[str, NodeCosts],
        remaining_budget: float,
    ) -> MaterializationDecision:
        return MaterializationDecision(
            node=node,
            materialize=False,
            score=float("inf"),
            size=costs[node].output_size,
            remaining_budget=remaining_budget,
            reason="materialize-none",
        )


class KnapsackOracleMaterializer(MaterializationPolicy):
    """Offline oracle: precomputes the optimal set for the *whole* iteration.

    Assumes every node completed this iteration is reusable next iteration
    (the paper's simplest-case assumption under which the problem is already
    NP-hard) and solves the induced knapsack exactly.  ``decide`` then simply
    answers membership queries; it ignores ``remaining_budget`` beyond the
    initial plan because the plan already respects the budget.
    """

    name = "knapsack_oracle"

    def __init__(self, dag: Dag, costs: Mapping[str, NodeCosts], budget: float) -> None:
        items = [
            KnapsackItem(name=node, size=costs[node].output_size, benefit=reuse_benefit(dag, costs, node))
            for node in dag.nodes()
        ]
        self.selected_, self.total_benefit_ = knapsack_select(items, budget)

    def decide(
        self,
        node: str,
        dag: Dag,
        costs: Mapping[str, NodeCosts],
        remaining_budget: float,
    ) -> MaterializationDecision:
        materialize = node in self.selected_ and costs[node].output_size <= remaining_budget
        return MaterializationDecision(
            node=node,
            materialize=materialize,
            score=-reuse_benefit(dag, costs, node),
            size=costs[node].output_size,
            remaining_budget=remaining_budget,
            reason="knapsack oracle",
        )


def policy_by_name(name: str, **kwargs) -> MaterializationPolicy:
    """Factory used by the benchmark harness configuration."""
    policies = {
        HelixOnlineMaterializer.name: HelixOnlineMaterializer,
        MaterializeAll.name: MaterializeAll,
        MaterializeNone.name: MaterializeNone,
    }
    if name not in policies:
        raise OptimizerError(f"unknown materialization policy {name!r}; expected one of {sorted(policies)}")
    return policies[name](**kwargs)
