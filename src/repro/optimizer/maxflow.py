"""Maximum-flow / minimum-cut solver (Dinic's algorithm).

The recomputation optimizer reduces its state-assignment problem to the
project selection problem, which in turn needs a min s-t cut.  This module is
self-contained (no networkx) so the optimality claims rest on code that is
fully tested here; tests cross-check small instances against
``networkx.maximum_flow`` and against brute-force cut enumeration.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import OptimizerError

#: Edges at least this large are treated as effectively infinite by callers.
INFINITY = float("inf")


class ResidualReachability(set):
    """Source-side node set stamped with the residual epoch it was computed at.

    Behaves exactly like the plain ``set`` :meth:`FlowNetwork.min_cut_source_side`
    used to return, but carries the network's residual epoch so
    :meth:`FlowNetwork.min_cut_edges` can refuse stale answers instead of
    silently pairing a fresh residual graph with an outdated source side.
    """

    def __init__(self, nodes: Optional[Set[int]] = None, epoch: int = 0) -> None:
        super().__init__(nodes or ())
        self.epoch = epoch


class FlowNetwork:
    """A directed flow network over integer node ids with Dinic max-flow."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise OptimizerError("flow network needs at least one node")
        self.n_nodes = n_nodes
        # Edge arrays: to[e], cap[e]; edge e^1 is the reverse of edge e.
        self._to: List[int] = []
        self._cap: List[float] = []
        self._orig: List[float] = []
        self._adjacency: List[List[int]] = [[] for _ in range(n_nodes)]
        # Bumped whenever residual capacities change (new edge, augmenting
        # path, capacity rewrite); lets cut queries detect stale answers.
        self._residual_epoch = 0

    @property
    def residual_epoch(self) -> int:
        """Monotone counter of residual-graph mutations."""
        return self._residual_epoch

    def add_node(self) -> int:
        """Add a node and return its id."""
        self._adjacency.append([])
        self.n_nodes += 1
        return self.n_nodes - 1

    def add_edge(self, source: int, target: int, capacity: float) -> int:
        """Add a directed edge and its zero-capacity reverse; returns the edge id."""
        if capacity < 0:
            raise OptimizerError(f"negative capacity {capacity} on edge {source}->{target}")
        self._check_node(source)
        self._check_node(target)
        edge_id = len(self._to)
        self._to.append(target)
        self._cap.append(capacity)
        self._orig.append(capacity)
        self._adjacency[source].append(edge_id)
        self._to.append(source)
        self._cap.append(0.0)
        self._orig.append(0.0)
        self._adjacency[target].append(edge_id + 1)
        self._residual_epoch += 1
        return edge_id

    # ------------------------------------------------------------------
    # Warm-start support
    # ------------------------------------------------------------------
    def edge_flow(self, edge_id: int) -> float:
        """Flow currently routed through forward edge ``edge_id``."""
        if edge_id % 2 != 0:
            raise OptimizerError(f"edge id {edge_id} is a reverse edge")
        return self._cap[edge_id ^ 1]

    def set_edge_capacity(self, edge_id: int, capacity: float) -> bool:
        """Rewrite a forward edge's capacity while preserving its current flow.

        This is the warm-start primitive: after a solved max flow, callers may
        update capacities in place and re-run :meth:`max_flow` to push only the
        *additional* flow the new capacities admit.  Returns ``False`` without
        modifying the network when the edge already carries more flow than the
        new capacity allows — the residual graph would go invalid, so the
        caller must fall back to a cold solve.
        """
        if edge_id % 2 != 0:
            raise OptimizerError(f"edge id {edge_id} is a reverse edge")
        if not 0 <= edge_id < len(self._to):
            raise OptimizerError(f"edge id {edge_id} out of range")
        if capacity < 0:
            raise OptimizerError(f"negative capacity {capacity} on edge {edge_id}")
        flow = self._cap[edge_id ^ 1]
        if capacity < flow:
            return False
        self._cap[edge_id] = capacity - flow
        self._orig[edge_id] = capacity
        self._residual_epoch += 1
        return True

    def reduce_edge_flow(self, edge_id: int, amount: float, source: int, sink: int) -> bool:
        """Cancel ``amount`` units of flow routed through forward edge ``edge_id``.

        The decremental half of warm-starting: when a capacity rewrite would
        drop below the edge's routed flow, the excess is *canceled* instead of
        rebuilding the network.  The edge's own flow is reduced and
        conservation is restored by canceling matching flow upstream (along
        flow-carrying ``source`` ⇝ tail paths) and downstream (along
        head ⇝ ``sink`` paths).  The result is a valid — no longer maximum —
        flow; re-running :meth:`max_flow` augments it back to optimal.

        Path cancellation unwinds any *acyclic* flow; if the flow through the
        edge rides a directed cycle (impossible when the network itself is
        acyclic, as in the project-selection reduction) the walk can come up
        short.  Returns ``False`` in that case; the network is then left with
        a partially canceled — still valid — flow, so callers should rebuild
        from scratch.

        Cancellation stops once the unreturned residue is below a *relative*
        tolerance (``amount * 1e-9``): measured-cost capacities accumulate
        sub-ulp rounding during augmentation, so the flow decomposition can
        come up a few ulps short of ``amount`` even on acyclic networks.
        Exactly representable flows (integers, dyadic rationals) cancel to
        exactly zero and never engage the tolerance.
        """
        if edge_id % 2 != 0:
            raise OptimizerError(f"edge id {edge_id} is a reverse edge")
        if not 0 <= edge_id < len(self._to):
            raise OptimizerError(f"edge id {edge_id} out of range")
        if amount < 0:
            raise OptimizerError(f"negative cancellation amount {amount}")
        if amount == 0.0:
            return True
        flow = self._cap[edge_id ^ 1]
        if amount > flow + 1e-12:
            raise OptimizerError(
                f"cannot cancel {amount} units on edge {edge_id} carrying only {flow}"
            )
        head = self._to[edge_id]
        tail = self._to[edge_id ^ 1]
        self._cap[edge_id] += amount
        self._cap[edge_id ^ 1] -= amount
        self._residual_epoch += 1
        # Restore conservation at both endpoints: the tail now has `amount`
        # excess inflow (cancel it back toward the source), the head `amount`
        # excess outflow (cancel the onward flow back from the sink).
        if tail != source and not self._cancel_along(tail, source, amount):
            return False
        if head != sink and not self._cancel_along(sink, head, amount):
            return False
        return True

    def _cancel_along(self, start: int, goal: int, amount: float) -> bool:
        """Cancel ``amount`` of flow carried by forward paths ``goal`` ⇝ ``start``.

        Walks the *reverse* edges of flow-carrying forward edges (a reverse
        edge's residual capacity equals its forward twin's flow) from
        ``start`` back to ``goal``; each path found cancels its bottleneck.
        Each cancellation either finishes the amount or zeroes at least one
        edge's flow, so the loop runs at most O(edges) times.

        A rounding residue of at most ``amount * 1e-9`` may be left behind
        (see :meth:`reduce_edge_flow`); it is negligible against the
        measured-cost capacities this network carries and vanishes entirely
        for exactly representable flows.
        """
        slack = amount * 1e-9
        remaining = amount
        while remaining > slack:
            path = self._flow_path(start, goal)
            if path is None:
                return False
            bottleneck = min(remaining, min(self._cap[e] for e in path))
            for reverse_id in path:
                self._cap[reverse_id] -= bottleneck
                self._cap[reverse_id ^ 1] += bottleneck
            self._residual_epoch += 1
            remaining -= bottleneck
        return True

    def _flow_path(self, start: int, goal: int) -> Optional[List[int]]:
        """BFS from ``start`` to ``goal`` over reverse edges with positive capacity.

        Returns the reverse-edge ids along one such path (in walk order), or
        ``None`` when ``goal`` is unreachable through flow-carrying edges.
        """
        if start == goal:
            return []
        parent_edge: Dict[int, int] = {}
        queue = deque([start])
        seen = {start}
        while queue:
            node = queue.popleft()
            for e in self._adjacency[node]:
                if e % 2 == 0 or self._cap[e] <= 1e-12:
                    continue
                target = self._to[e]
                if target in seen:
                    continue
                seen.add(target)
                parent_edge[target] = e
                if target == goal:
                    path = [e]
                    while node != start:
                        back = parent_edge[node]
                        path.append(back)
                        node = self._to[back ^ 1]
                    path.reverse()
                    return path
                queue.append(target)
        return None

    def flow_value(self, source: int) -> float:
        """Net flow currently leaving ``source`` (total flow of the last solve)."""
        self._check_node(source)
        total = 0.0
        for edge_id in self._adjacency[source]:
            if edge_id % 2 == 0:
                total += self._cap[edge_id ^ 1]
            else:
                total -= self._cap[edge_id]
        return total

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise OptimizerError(f"node id {node} out of range (0..{self.n_nodes - 1})")

    # ------------------------------------------------------------------
    # Dinic
    # ------------------------------------------------------------------
    def _bfs_levels(self, source: int, sink: int) -> List[int]:
        levels = [-1] * self.n_nodes
        levels[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for edge_id in self._adjacency[node]:
                target = self._to[edge_id]
                if self._cap[edge_id] > 1e-12 and levels[target] < 0:
                    levels[target] = levels[node] + 1
                    queue.append(target)
        return levels

    def _dfs_blocking(self, source: int, sink: int, levels: List[int], iters: List[int]) -> float:
        """Find one augmenting path in the level graph (iterative DFS)."""
        path: List[int] = []  # edge ids along the current path
        node = source
        while True:
            if node == sink:
                bottleneck = min(self._cap[edge_id] for edge_id in path)
                for edge_id in path:
                    self._cap[edge_id] -= bottleneck
                    self._cap[edge_id ^ 1] += bottleneck
                self._residual_epoch += 1
                return bottleneck
            advanced = False
            while iters[node] < len(self._adjacency[node]):
                edge_id = self._adjacency[node][iters[node]]
                target = self._to[edge_id]
                if self._cap[edge_id] > 1e-12 and levels[target] == levels[node] + 1:
                    path.append(edge_id)
                    node = target
                    advanced = True
                    break
                iters[node] += 1
            if advanced:
                continue
            if not path:
                return 0.0
            # Dead end: retreat one step and advance the parent's iterator.
            dead_edge = path.pop()
            parent = self._to[dead_edge ^ 1]
            iters[parent] += 1
            node = parent

    def max_flow(self, source: int, sink: int) -> float:
        """Compute the maximum flow value from ``source`` to ``sink``."""
        self._check_node(source)
        self._check_node(sink)
        if source == sink:
            raise OptimizerError("source and sink must differ")
        total = 0.0
        while True:
            levels = self._bfs_levels(source, sink)
            if levels[sink] < 0:
                return total
            iters = [0] * self.n_nodes
            while True:
                pushed = self._dfs_blocking(source, sink, levels, iters)
                if pushed <= 1e-12:
                    break
                total += pushed

    def min_cut_source_side(self, source: int) -> ResidualReachability:
        """Nodes reachable from ``source`` in the residual graph.

        Must be called after :meth:`max_flow`; the returned set is the source
        side of a minimum cut (the *source-minimal* cut — unique for any max
        flow, which is what makes warm- and cold-started solves agree on the
        cut certificate).  The answer is stamped with the current residual
        epoch so :meth:`min_cut_edges` can reject it once it goes stale.
        """
        reachable = ResidualReachability({source}, epoch=self._residual_epoch)
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for edge_id in self._adjacency[node]:
                target = self._to[edge_id]
                if self._cap[edge_id] > 1e-12 and target not in reachable:
                    reachable.add(target)
                    queue.append(target)
        return reachable

    def min_cut_edges(
        self, source: int, reachable: Optional[Set[int]] = None
    ) -> List[Tuple[int, int, float]]:
        """The saturated forward edges crossing the minimum cut.

        Must be called after :meth:`max_flow`.  Returns ``(from, to,
        original_capacity)`` for every forward edge leaving the source side
        of the cut; capacities of the returned edges sum to the max-flow
        value — the certificate the explain subsystem records for every
        optimal plan.  Callers that already hold
        :meth:`min_cut_source_side`'s answer pass it as ``reachable`` to skip
        the second residual-graph traversal.

        A ``reachable`` set computed *before* any later residual mutation
        (another :meth:`max_flow` round, :meth:`set_edge_capacity`,
        :meth:`add_edge`) no longer describes this network; when the stamped
        :class:`ResidualReachability` epoch disagrees with the network's
        current epoch this method raises :class:`OptimizerError` instead of
        silently emitting a wrong cut.  A plain unstamped ``set`` is accepted
        verbatim for backwards compatibility — those callers own the
        freshness guarantee themselves.
        """
        if reachable is None:
            reachable = self.min_cut_source_side(source)
        stamp = getattr(reachable, "epoch", None)
        if stamp is not None and stamp != self._residual_epoch:
            raise OptimizerError(
                "stale residual reachability: the source side was computed at "
                f"epoch {stamp} but the network is now at epoch "
                f"{self._residual_epoch}; recompute min_cut_source_side() "
                "after mutating the network"
            )
        edges: List[Tuple[int, int, float]] = []
        for node in reachable:
            for edge_id in self._adjacency[node]:
                if edge_id % 2 != 0:  # only forward edges carry capacity
                    continue
                target = self._to[edge_id]
                if target not in reachable:
                    edges.append((node, target, self._orig[edge_id]))
        edges.sort()
        return edges

    def edge_list(self) -> List[Tuple[int, int, float]]:
        """Forward edges as (source-ish, target, remaining capacity) for inspection."""
        edges = []
        for node, edge_ids in enumerate(self._adjacency):
            for edge_id in edge_ids:
                if edge_id % 2 == 0:  # forward edges have even ids
                    edges.append((node, self._to[edge_id], self._cap[edge_id]))
        return edges
