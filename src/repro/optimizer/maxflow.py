"""Maximum-flow / minimum-cut solver (Dinic's algorithm).

The recomputation optimizer reduces its state-assignment problem to the
project selection problem, which in turn needs a min s-t cut.  This module is
self-contained (no networkx) so the optimality claims rest on code that is
fully tested here; tests cross-check small instances against
``networkx.maximum_flow`` and against brute-force cut enumeration.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import OptimizerError

#: Edges at least this large are treated as effectively infinite by callers.
INFINITY = float("inf")


class FlowNetwork:
    """A directed flow network over integer node ids with Dinic max-flow."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise OptimizerError("flow network needs at least one node")
        self.n_nodes = n_nodes
        # Edge arrays: to[e], cap[e]; edge e^1 is the reverse of edge e.
        self._to: List[int] = []
        self._cap: List[float] = []
        self._adjacency: List[List[int]] = [[] for _ in range(n_nodes)]

    def add_node(self) -> int:
        """Add a node and return its id."""
        self._adjacency.append([])
        self.n_nodes += 1
        return self.n_nodes - 1

    def add_edge(self, source: int, target: int, capacity: float) -> int:
        """Add a directed edge and its zero-capacity reverse; returns the edge id."""
        if capacity < 0:
            raise OptimizerError(f"negative capacity {capacity} on edge {source}->{target}")
        self._check_node(source)
        self._check_node(target)
        edge_id = len(self._to)
        self._to.append(target)
        self._cap.append(capacity)
        self._adjacency[source].append(edge_id)
        self._to.append(source)
        self._cap.append(0.0)
        self._adjacency[target].append(edge_id + 1)
        return edge_id

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise OptimizerError(f"node id {node} out of range (0..{self.n_nodes - 1})")

    # ------------------------------------------------------------------
    # Dinic
    # ------------------------------------------------------------------
    def _bfs_levels(self, source: int, sink: int) -> List[int]:
        levels = [-1] * self.n_nodes
        levels[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for edge_id in self._adjacency[node]:
                target = self._to[edge_id]
                if self._cap[edge_id] > 1e-12 and levels[target] < 0:
                    levels[target] = levels[node] + 1
                    queue.append(target)
        return levels

    def _dfs_blocking(self, source: int, sink: int, levels: List[int], iters: List[int]) -> float:
        """Find one augmenting path in the level graph (iterative DFS)."""
        path: List[int] = []  # edge ids along the current path
        node = source
        while True:
            if node == sink:
                bottleneck = min(self._cap[edge_id] for edge_id in path)
                for edge_id in path:
                    self._cap[edge_id] -= bottleneck
                    self._cap[edge_id ^ 1] += bottleneck
                return bottleneck
            advanced = False
            while iters[node] < len(self._adjacency[node]):
                edge_id = self._adjacency[node][iters[node]]
                target = self._to[edge_id]
                if self._cap[edge_id] > 1e-12 and levels[target] == levels[node] + 1:
                    path.append(edge_id)
                    node = target
                    advanced = True
                    break
                iters[node] += 1
            if advanced:
                continue
            if not path:
                return 0.0
            # Dead end: retreat one step and advance the parent's iterator.
            dead_edge = path.pop()
            parent = self._to[dead_edge ^ 1]
            iters[parent] += 1
            node = parent

    def max_flow(self, source: int, sink: int) -> float:
        """Compute the maximum flow value from ``source`` to ``sink``."""
        self._check_node(source)
        self._check_node(sink)
        if source == sink:
            raise OptimizerError("source and sink must differ")
        total = 0.0
        while True:
            levels = self._bfs_levels(source, sink)
            if levels[sink] < 0:
                return total
            iters = [0] * self.n_nodes
            while True:
                pushed = self._dfs_blocking(source, sink, levels, iters)
                if pushed <= 1e-12:
                    break
                total += pushed

    def min_cut_source_side(self, source: int) -> Set[int]:
        """Nodes reachable from ``source`` in the residual graph.

        Must be called after :meth:`max_flow`; the returned set is the source
        side of a minimum cut.
        """
        reachable: Set[int] = {source}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for edge_id in self._adjacency[node]:
                target = self._to[edge_id]
                if self._cap[edge_id] > 1e-12 and target not in reachable:
                    reachable.add(target)
                    queue.append(target)
        return reachable

    def min_cut_edges(
        self, source: int, reachable: Optional[Set[int]] = None
    ) -> List[Tuple[int, int, float]]:
        """The saturated forward edges crossing the minimum cut.

        Must be called after :meth:`max_flow`.  Returns ``(from, to,
        original_capacity)`` for every forward edge leaving the source side
        of the cut; the original capacity is recovered as the sum of the
        residual capacities of the edge and its reverse (flow conservation),
        and the capacities of the returned edges sum to the max-flow value —
        the certificate the explain subsystem records for every optimal plan.
        Callers that already hold :meth:`min_cut_source_side`'s answer pass
        it as ``reachable`` to skip the second residual-graph traversal.
        """
        if reachable is None:
            reachable = self.min_cut_source_side(source)
        edges: List[Tuple[int, int, float]] = []
        for node in reachable:
            for edge_id in self._adjacency[node]:
                if edge_id % 2 != 0:  # only forward edges carry capacity
                    continue
                target = self._to[edge_id]
                if target not in reachable:
                    edges.append((node, target, self._cap[edge_id] + self._cap[edge_id ^ 1]))
        edges.sort()
        return edges

    def edge_list(self) -> List[Tuple[int, int, float]]:
        """Forward edges as (source-ish, target, remaining capacity) for inspection."""
        edges = []
        for node, edge_ids in enumerate(self._adjacency):
            for edge_id in edge_ids:
                if edge_id % 2 == 0:  # forward edges have even ids
                    edges.append((node, self._to[edge_id], self._cap[edge_id]))
        return edges
