"""Helix's two optimizers: recomputation (per-iteration) and materialization (cross-iteration).

* The **recomputation optimizer** assigns each DAG node one of
  {compute, load, prune} to minimize the current iteration's runtime
  (Equation 1 of the paper).  It is solved exactly in polynomial time by a
  reduction to the PROJECT SELECTION PROBLEM, itself solved with a min s-t cut
  (our own Dinic max-flow).  Greedy and trivial policies are provided as
  ablation baselines.
* The **materialization optimizer** decides — online, as each operator
  finishes — whether to persist its output under a storage budget, using the
  paper's cost model ``r_i = 2*l_i − (c_i + Σ_{n_j ∈ A(n_i)} c_j)``.
  Materialize-all (DeepDive), materialize-none (KeystoneML) and an offline
  knapsack oracle are provided for comparison.
"""

from repro.optimizer.cost_model import CostDefaults, CostEstimator, CostRecord, NodeCosts
from repro.optimizer.knapsack import knapsack_select
from repro.optimizer.materialization import (
    HelixOnlineMaterializer,
    KnapsackOracleMaterializer,
    MaterializationDecision,
    MaterializationPolicy,
    MaterializeAll,
    MaterializeNone,
    reuse_benefit,
)
from repro.optimizer.maxflow import FlowNetwork
from repro.optimizer.project_selection import ProjectSelectionInstance, solve_project_selection
from repro.optimizer.recomputation import (
    CutEdge,
    PlanExplanation,
    build_selection_instance,
    compute_all_plan,
    exhaustive_plan,
    greedy_plan,
    optimal_plan,
    optimal_plan_explained,
    plan_cost,
    reuse_all_plan,
)

__all__ = [
    "NodeCosts",
    "CostRecord",
    "CostDefaults",
    "CostEstimator",
    "FlowNetwork",
    "ProjectSelectionInstance",
    "solve_project_selection",
    "optimal_plan",
    "optimal_plan_explained",
    "build_selection_instance",
    "PlanExplanation",
    "CutEdge",
    "greedy_plan",
    "compute_all_plan",
    "reuse_all_plan",
    "exhaustive_plan",
    "plan_cost",
    "MaterializationPolicy",
    "MaterializationDecision",
    "HelixOnlineMaterializer",
    "MaterializeAll",
    "MaterializeNone",
    "KnapsackOracleMaterializer",
    "reuse_benefit",
    "knapsack_select",
]
