"""0/1 knapsack solver used by the offline materialization oracle.

The materialization problem is NP-hard via a reduction *from* knapsack even in
the simplest one-more-iteration setting, so the natural offline oracle — which
artifact set to persist under the storage budget to maximize future savings —
is a knapsack instance.  Sizes are discretized so the dynamic program stays
polynomial in the budget (a standard FPTAS-style rounding: the selected set
never exceeds the true budget because sizes are rounded *up*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.errors import OptimizerError


@dataclass(frozen=True)
class KnapsackItem:
    """One candidate artifact: identifier, size (weight), and future benefit (value)."""

    name: str
    size: float
    benefit: float


def knapsack_select(
    items: Sequence[KnapsackItem],
    budget: float,
    resolution: Optional[float] = None,
    max_capacity_units: int = 4096,
) -> Tuple[Set[str], float]:
    """Select a max-benefit subset of ``items`` with total size ≤ ``budget``.

    ``resolution`` is the size (bytes) of one DP capacity unit; when omitted it
    is chosen so the DP has at most ``max_capacity_units`` columns.  Item sizes
    are rounded up to whole units, so the reported selection always respects
    the true budget (at the price of slight conservatism).  Items with
    non-positive benefit are never selected.  Returns (selected names, total
    benefit).
    """
    if budget < 0:
        raise OptimizerError("budget must be non-negative")
    if resolution is not None and resolution <= 0:
        raise OptimizerError("resolution must be positive")
    if max_capacity_units <= 0:
        raise OptimizerError("max_capacity_units must be positive")

    candidates = [item for item in items if item.benefit > 0 and item.size <= budget]
    if not candidates or budget == 0:
        return set(), 0.0

    if budget == float("inf"):
        # Unconstrained: every positive-benefit item is worth keeping.
        return {item.name for item in candidates}, sum(item.benefit for item in candidates)

    if resolution is None:
        resolution = max(1.0, budget / max_capacity_units)
    capacity = int(budget // resolution)
    if capacity <= 0:
        return set(), 0.0
    weights = [max(1, int(-(-item.size // resolution))) for item in candidates]  # ceil division

    # Full (items+1) x (capacity+1) table so backtracking is exact.
    n_items = len(candidates)
    table: List[List[float]] = [[0.0] * (capacity + 1) for _ in range(n_items + 1)]
    for row in range(1, n_items + 1):
        item = candidates[row - 1]
        weight = weights[row - 1]
        previous = table[row - 1]
        current = table[row]
        for cap in range(capacity + 1):
            best = previous[cap]
            if weight <= cap:
                with_item = previous[cap - weight] + item.benefit
                if with_item > best:
                    best = with_item
            current[cap] = best

    selected: Set[str] = set()
    cap = capacity
    for row in range(n_items, 0, -1):
        if table[row][cap] != table[row - 1][cap]:
            selected.add(candidates[row - 1].name)
            cap -= weights[row - 1]
    return selected, table[n_items][capacity]
