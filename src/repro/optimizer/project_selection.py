"""Project selection (maximum-weight closure) via minimum cut.

The project selection problem [Kleinberg & Tardos, *Algorithm Design*]: given
items with (possibly negative) profits and prerequisite constraints
"selecting item *a* requires selecting item *b*", choose a prerequisite-closed
subset maximizing total profit.  It reduces to a minimum s-t cut:

* source → item with capacity ``profit`` for every positive-profit item,
* item → sink with capacity ``-profit`` for every negative-profit item,
* item *a* → item *b* with infinite capacity for every prerequisite (a, b).

The optimal profit equals (sum of positive profits) − (min cut), and the
optimal selection is the source side of the cut (minus the source).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Set, Tuple

from repro.errors import OptimizerError
from repro.optimizer.maxflow import FlowNetwork


@dataclass
class ProjectSelectionInstance:
    """Items with profits plus prerequisite edges ``(item, required_item)``."""

    profits: Dict[Hashable, float] = field(default_factory=dict)
    prerequisites: List[Tuple[Hashable, Hashable]] = field(default_factory=list)

    def add_item(self, item: Hashable, profit: float) -> None:
        if item in self.profits:
            raise OptimizerError(f"item {item!r} added twice")
        self.profits[item] = float(profit)

    def add_prerequisite(self, item: Hashable, requires: Hashable) -> None:
        """Selecting ``item`` requires selecting ``requires``."""
        self.prerequisites.append((item, requires))

    def validate(self) -> None:
        for item, requires in self.prerequisites:
            if item not in self.profits:
                raise OptimizerError(f"prerequisite references unknown item {item!r}")
            if requires not in self.profits:
                raise OptimizerError(f"prerequisite references unknown item {requires!r}")


#: Sentinel endpoints used in :attr:`ProjectSelectionSolution.cut_edges` for
#: the flow network's artificial source and sink nodes.
SOURCE = "source"
SINK = "sink"


@dataclass
class ProjectSelectionSolution:
    """The optimal closed subset, its total profit, and the cut certificate.

    ``cut_edges`` lists the saturated edges of the minimum cut as
    ``(from, to, capacity)`` where each endpoint is an instance item or the
    :data:`SOURCE` / :data:`SINK` sentinel; their capacities sum to
    ``cut_value``, the max-flow value.  A ``source → item`` cut edge means
    the item's (positive) profit was forgone; an ``item → sink`` cut edge
    means the item's (negative) profit was paid.  Prerequisite edges are
    effectively infinite and never appear in a cut.
    """

    selected: Set[Hashable]
    profit: float
    cut_value: float = 0.0
    cut_edges: List[Tuple[Hashable, Hashable, float]] = field(default_factory=list)


def solve_project_selection(instance: ProjectSelectionInstance) -> ProjectSelectionSolution:
    """Solve an instance exactly using a min cut on the derived flow network."""
    instance.validate()
    items = list(instance.profits)
    index = {item: position + 2 for position, item in enumerate(items)}  # 0 = source, 1 = sink
    network = FlowNetwork(len(items) + 2)
    source, sink = 0, 1

    positive_total = 0.0
    for item, profit in instance.profits.items():
        if profit > 0:
            network.add_edge(source, index[item], profit)
            positive_total += profit
        elif profit < 0:
            network.add_edge(index[item], sink, -profit)

    # A generous finite stand-in for infinity keeps the arithmetic exact enough
    # for the reachability-based cut extraction while avoiding inf-inf issues.
    infinite = sum(abs(p) for p in instance.profits.values()) + 1.0
    for item, requires in instance.prerequisites:
        network.add_edge(index[item], index[requires], infinite)

    cut_value = network.max_flow(source, sink)
    reachable = network.min_cut_source_side(source)
    selected = {item for item in items if index[item] in reachable}
    labels = {0: SOURCE, 1: SINK, **{position: item for item, position in index.items()}}
    cut_edges = [
        (labels[from_id], labels[to_id], capacity)
        for from_id, to_id, capacity in network.min_cut_edges(source, reachable)
    ]
    return ProjectSelectionSolution(
        selected=selected, profit=positive_total - cut_value,
        cut_value=cut_value, cut_edges=cut_edges,
    )
