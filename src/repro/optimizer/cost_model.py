"""Cost model shared by the recomputation and materialization optimizers.

Each DAG node ``n_i`` carries a *compute cost* ``c_i`` (time to run its
operator given available inputs), a *load cost* ``l_i`` (time to deserialize a
previously materialized result), an output size, and a flag saying whether an
artifact with the node's signature is currently materialized.  The
:class:`CostEstimator` assembles these from three information sources, in
decreasing priority:

1. the artifact store catalog (exact sizes, measured or modeled load costs)
   for materialized signatures;
2. run history (measured compute costs and sizes from earlier iterations for
   the same signature);
3. operator-type averages from history, then global defaults, for
   never-executed nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional

from repro.compiler.codegen import CompiledWorkflow


@dataclass
class NodeCosts:
    """Costs for one DAG node, in seconds and bytes.

    ``chunk_count`` / ``chunks_present`` describe the node's *chunked
    artifact* state when a previous partitioned run materialized it as
    per-partition chunks: a complete chunk family marks the node
    ``materialized`` (loadable), a partial family leaves it computable but
    with ``compute_cost`` discounted to "recompute the missing chunks, load
    the present ones" — the scheduler's partial-hit recovery.
    ``full_compute_cost`` always preserves the undiscounted estimate so
    strategies that forbid reuse can plan against it.

    The ``delta_*`` fields carry the incremental optimizer's verdict when a
    *data* change left some of the node's chunks clean under its previous
    signature: ``delta_strategy`` is ``"delta"`` when "recompute dirty chunks
    + load clean chunks + merge" priced below a full recompute (and
    ``compute_cost`` is then that delta price, so the min-cut sees it), or
    ``"full"`` when delta was considered and rejected.  Empty means no delta
    applied to this node.
    """

    compute_cost: float
    load_cost: float
    output_size: float = 0.0
    materialized: bool = False
    chunk_count: int = 0
    chunks_present: int = 0
    full_compute_cost: Optional[float] = None
    delta_strategy: str = ""
    delta_chunk_count: int = 0
    delta_dirty_chunks: int = 0
    delta_reusable_chunks: int = 0
    delta_savings: float = 0.0

    def __post_init__(self) -> None:
        self.compute_cost = max(0.0, float(self.compute_cost))
        self.load_cost = max(0.0, float(self.load_cost))
        self.output_size = max(0.0, float(self.output_size))
        if self.full_compute_cost is None:
            self.full_compute_cost = self.compute_cost
        else:
            self.full_compute_cost = max(0.0, float(self.full_compute_cost))

    def forget_reuse(self) -> None:
        """Reset every reuse signal (materialized artifact, chunk family).

        Baseline strategies that must recompute a node call this so neither
        the planner nor the scheduler's partial-hit recovery reuses state.
        """
        self.materialized = False
        self.chunk_count = 0
        self.chunks_present = 0
        self.compute_cost = self.full_compute_cost
        self.delta_strategy = ""
        self.delta_chunk_count = 0
        self.delta_dirty_chunks = 0
        self.delta_reusable_chunks = 0
        self.delta_savings = 0.0


@dataclass
class DeltaHint:
    """What the incremental planner knows about one node's reusable chunks.

    Produced by :class:`repro.incremental.DeltaPlanner` (kept here so the
    optimizer does not import the incremental package): ``reusable_chunks``
    old-signature chunk artifacts, totalling ``reusable_bytes``, can stand in
    for clean chunks of this run's ``chunk_count``-way split.
    """

    chunk_count: int
    dirty_chunks: int
    reusable_chunks: int
    reusable_bytes: float
    old_signature: str = ""
    #: True when every reusable chunk sits in a memory tier — its loads are
    #: then priced at memory bandwidth, the same way ``estimate`` prices
    #: memory-resident whole artifacts.
    memory_resident: bool = False


@dataclass
class CostRecord:
    """Measured statistics for one signature from a previous execution."""

    compute_cost: float
    output_size: float
    operator_type: str = ""


@dataclass(frozen=True)
class CostDefaults:
    """Fallbacks and the tier/codec-aware storage throughput model.

    ``read_bandwidth`` / ``write_bandwidth`` are bytes per second; load and
    write costs are modeled as ``overhead + size / bandwidth`` whenever no
    measured value is available.  ``codec_read_bandwidth`` refines the read
    model per serialization codec — deserialization, not the disk, dominates
    load time, and a raw NumPy buffer decodes an order of magnitude faster
    than pickled dict rows.  Artifacts resident in a memory tier skip the
    disk entirely: their loads are priced at ``memory_read_overhead`` plus a
    memory-bandwidth copy — effectively zero next to any compute — which is
    exactly what widens the paper's reuse-wins region on a tiered store.
    """

    default_compute_cost: float = 1.0
    default_output_size: float = 1_000_000.0
    read_bandwidth: float = 200e6
    write_bandwidth: float = 120e6
    io_overhead: float = 0.005
    memory_read_overhead: float = 0.0002
    memory_bandwidth: float = 8e9
    codec_read_bandwidth: Mapping[str, float] = field(
        default_factory=lambda: {
            "pickle": 200e6,
            "pickle+zlib": 120e6,
            "numpy-raw": 1.2e9,
            "dense-block": 500e6,
        }
    )

    def load_cost_for_size(
        self, size: float, codec: Optional[str] = None, memory_resident: bool = False
    ) -> float:
        if memory_resident:
            return self.memory_read_overhead + max(0.0, size) / self.memory_bandwidth
        bandwidth = self.read_bandwidth
        if codec is not None:
            bandwidth = self.codec_read_bandwidth.get(codec, self.read_bandwidth)
        return self.io_overhead + max(0.0, size) / bandwidth

    def write_cost_for_size(self, size: float) -> float:
        return self.io_overhead + max(0.0, size) / self.write_bandwidth


class CostEstimator:
    """Builds the per-node :class:`NodeCosts` map for a compiled workflow."""

    def __init__(self, defaults: CostDefaults = CostDefaults()) -> None:
        self.defaults = defaults

    def estimate(
        self,
        compiled: CompiledWorkflow,
        history: Optional[Mapping[str, CostRecord]] = None,
        materialized_sizes: Optional[Mapping[str, float]] = None,
        measured_load_costs: Optional[Mapping[str, float]] = None,
        chunk_inventory: Optional[Mapping[str, Any]] = None,
        recoverable_partitions: int = 1,
        codecs_by_signature: Optional[Mapping[str, str]] = None,
        memory_resident: Optional[Iterable[str]] = None,
        delta_hints: Optional[Mapping[str, "DeltaHint"]] = None,
    ) -> Dict[str, NodeCosts]:
        """Estimate costs for every node of ``compiled``.

        Parameters
        ----------
        history:
            Signature → :class:`CostRecord` of previously measured executions.
        materialized_sizes:
            Signature → artifact size (bytes) for signatures currently in the
            artifact store; presence marks the node as loadable.
        measured_load_costs:
            Signature → measured load time, when the store has actually read
            the artifact from its durable tier before (overrides the
            bandwidth model).
        chunk_inventory:
            Signature → :class:`~repro.execution.store.ChunkInventory` for
            signatures stored as partition chunks.  A complete family makes
            the node loadable exactly like a monolithic artifact (the LOAD
            path reassembles any complete family).  A partial family
            discounts the compute cost to "recompute the missing fraction +
            load the present chunks" — but only when its chunk count equals
            ``recoverable_partitions``, because the scheduler's partial-hit
            recovery can only reuse chunks cut at this run's own boundaries.
        recoverable_partitions:
            The executing session's partition count (1 = partitioning off).
        codecs_by_signature:
            Signature → codec id recorded in the artifact catalog; refines
            modeled load costs with per-codec deserialize throughput.
        memory_resident:
            Signatures a memory tier would serve.  Their loads are priced by
            the memory model (near zero) — capped by any measured value, so
            a hit can only get cheaper, never regress the estimate.
        delta_hints:
            Node name → :class:`DeltaHint` from the incremental planner, for
            nodes whose signature changed because *input data* changed but
            whose previous-signature chunk family still covers some clean
            chunks.  Prices "recompute dirty + load clean + merge" against
            the full recompute; the cheaper side becomes ``compute_cost``
            and the verdict lands in the ``delta_*`` fields.
        """
        history = dict(history or {})
        materialized_sizes = dict(materialized_sizes or {})
        measured_load_costs = dict(measured_load_costs or {})
        chunk_inventory = dict(chunk_inventory or {})
        codecs_by_signature = dict(codecs_by_signature or {})
        memory_resident = set(memory_resident or ())

        type_averages = self._operator_type_averages(history)
        costs: Dict[str, NodeCosts] = {}
        for name in compiled.nodes():
            signature = compiled.signature_of(name)
            operator_type = type(compiled.operator(name)).__name__
            record = history.get(signature)

            if record is not None:
                compute_cost = record.compute_cost
                output_size = record.output_size
            elif operator_type in type_averages:
                compute_cost, output_size = type_averages[operator_type]
            else:
                compute_cost = self.defaults.default_compute_cost
                output_size = self.defaults.default_output_size

            full_compute_cost = compute_cost
            chunk_count = chunks_present = 0
            materialized = signature in materialized_sizes
            if materialized:
                output_size = materialized_sizes[signature]
            codec = codecs_by_signature.get(signature)
            if signature in memory_resident:
                # Memory-tier hit: effectively free, whatever the codec.  A
                # measured (durable-tier) cost can only cap it downward.
                load_cost = self.defaults.load_cost_for_size(
                    output_size, codec=codec, memory_resident=True
                )
                if signature in measured_load_costs:
                    load_cost = min(load_cost, measured_load_costs[signature])
            elif signature in measured_load_costs:
                load_cost = measured_load_costs[signature]
            else:
                load_cost = self.defaults.load_cost_for_size(output_size, codec=codec)

            inventory = chunk_inventory.get(signature)
            if inventory is not None and not materialized:
                if inventory.complete:
                    chunk_count = inventory.count
                    chunks_present = len(inventory.present)
                    materialized = True
                    output_size = inventory.bytes_present
                    load_cost = (
                        inventory.measured_load_cost
                        if inventory.measured_load_cost is not None
                        else self.defaults.load_cost_for_size(inventory.bytes_present)
                    )
                elif inventory.count == recoverable_partitions:
                    chunk_count = inventory.count
                    chunks_present = len(inventory.present)
                    missing_fraction = (chunk_count - chunks_present) / chunk_count
                    compute_cost = (
                        compute_cost * missing_fraction
                        + self.defaults.load_cost_for_size(inventory.bytes_present)
                    )
                # A partial family cut at different boundaries is unusable by
                # this run: no discount, no chunk fields — full recompute.

            node_costs = NodeCosts(
                compute_cost=compute_cost,
                load_cost=load_cost,
                output_size=output_size,
                materialized=materialized,
                chunk_count=chunk_count,
                chunks_present=chunks_present,
                full_compute_cost=full_compute_cost,
            )
            hint = (delta_hints or {}).get(name)
            if hint is not None and not materialized and hint.chunk_count > 0:
                self._apply_delta_hint(node_costs, hint)
            costs[name] = node_costs
        return costs

    def _apply_delta_hint(self, node_costs: NodeCosts, hint: "DeltaHint") -> None:
        """Price delta-vs-full for one node and record the verdict in place."""
        full = node_costs.compute_cost
        dirty_fraction = hint.dirty_chunks / hint.chunk_count
        delta_cost = full * dirty_fraction + self.defaults.load_cost_for_size(
            hint.reusable_bytes, memory_resident=hint.memory_resident
        )
        node_costs.delta_chunk_count = hint.chunk_count
        node_costs.delta_dirty_chunks = hint.dirty_chunks
        node_costs.delta_reusable_chunks = hint.reusable_chunks
        if hint.reusable_chunks > 0 and delta_cost < full:
            node_costs.delta_strategy = "delta"
            node_costs.delta_savings = full - delta_cost
            node_costs.compute_cost = delta_cost
        else:
            node_costs.delta_strategy = "full"
            node_costs.delta_savings = 0.0

    @staticmethod
    def _operator_type_averages(history: Mapping[str, CostRecord]) -> Dict[str, tuple]:
        sums: Dict[str, list] = {}
        for record in history.values():
            if not record.operator_type:
                continue
            entry = sums.setdefault(record.operator_type, [0.0, 0.0, 0])
            entry[0] += record.compute_cost
            entry[1] += record.output_size
            entry[2] += 1
        return {
            operator_type: (total_cost / count, total_size / count)
            for operator_type, (total_cost, total_size, count) in sums.items()
            if count
        }
