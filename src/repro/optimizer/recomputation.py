"""The recomputation problem: assign {compute, load, prune} states per node.

Given a DAG ``G = (N, E)`` where node ``n_i`` has compute cost ``c_i`` and
load cost ``l_i``, choose a state assignment minimizing

    Σ_i  I[s(n_i) = compute] · c_i  +  I[s(n_i) = load] · l_i          (Eq. 1)

subject to the *prune constraint* (a computed node cannot have pruned
parents), output availability (declared workflow outputs must be computed or
loaded), and loadability (only nodes whose signature is materialized may be
loaded).

``optimal_plan`` solves this exactly in polynomial time via the reduction to
PROJECT SELECTION described in DESIGN.md §3.1.  ``greedy_plan``,
``reuse_all_plan`` and ``compute_all_plan`` are the heuristic/trivial policies
used by the baselines and the ablation benchmarks; ``exhaustive_plan`` is an
exponential reference implementation used only in tests.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import OptimizerError, PlanError
from repro.graph.dag import Dag, NodeState
from repro.obs.registry import COUNT_BUCKETS, get_registry
from repro.optimizer.cost_model import NodeCosts
from repro.optimizer.project_selection import (
    SINK,
    SOURCE,
    ProjectSelectionInstance,
    solve_project_selection,
)


def _validate_inputs(dag: Dag, costs: Mapping[str, NodeCosts], outputs: Sequence[str]) -> None:
    missing_costs = [name for name in dag.nodes() if name not in costs]
    if missing_costs:
        raise OptimizerError(f"missing costs for nodes {missing_costs}")
    unknown_outputs = [name for name in outputs if name not in dag]
    if unknown_outputs:
        raise OptimizerError(f"outputs {unknown_outputs} are not nodes of the DAG")
    if not outputs:
        raise OptimizerError("at least one output node is required")


def plan_cost(states: Mapping[str, NodeState], costs: Mapping[str, NodeCosts]) -> float:
    """Objective value (Eq. 1) of a state assignment."""
    total = 0.0
    for name, state in states.items():
        if state is NodeState.COMPUTE:
            total += costs[name].compute_cost
        elif state is NodeState.LOAD:
            total += costs[name].load_cost
    return total


def validate_states(
    dag: Dag,
    costs: Mapping[str, NodeCosts],
    outputs: Sequence[str],
    states: Mapping[str, NodeState],
) -> None:
    """Raise :class:`PlanError` if ``states`` violates any feasibility constraint."""
    for name in dag.nodes():
        state = states.get(name)
        if state is None:
            raise PlanError(f"no state assigned to node {name!r}")
        if state is NodeState.LOAD and not costs[name].materialized:
            raise PlanError(f"node {name!r} is loaded but has no materialized artifact")
        if state is NodeState.COMPUTE:
            pruned = [p for p in dag.parents(name) if states.get(p) is NodeState.PRUNE]
            if pruned:
                raise PlanError(f"node {name!r} is computed but parents {pruned} are pruned")
    for output in outputs:
        if states.get(output) is NodeState.PRUNE:
            raise PlanError(f"output {output!r} is pruned")


# ---------------------------------------------------------------------------
# Exact algorithm (project selection / min-cut)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CutEdge:
    """One saturated edge of the reduction's minimum cut, in node terms.

    ``source`` / ``target`` are the item labels of the flow network —
    ``"source"``, ``"sink"``, ``"avail:<node>"``, or ``"comp:<node>"`` —
    ``node`` names the workflow node the edge prices (empty for the rare
    source/sink bookkeeping edge), and ``capacity`` is the cost the optimal
    plan pays (or forgoes) across this edge.  The capacities of a plan's cut
    edges sum to the min-cut value reported by
    :meth:`~repro.optimizer.maxflow.FlowNetwork.max_flow`.
    """

    source: str
    target: str
    capacity: float
    node: str = ""


@dataclass
class PlanExplanation:
    """Why the exact planner chose its state assignment.

    The min-cut *certificate* of the plan: the cut value (equal to the
    max-flow value of the project-selection network) and the saturated edges
    crossing the cut, plus which side of the cut each node's ``avail`` item
    landed on (``True`` = source side = the plan makes the node's value
    available).  Recorded into every :class:`~repro.introspect.trace.RunTrace`
    so reuse decisions stay inspectable after the fact.
    """

    cut_value: float = 0.0
    cut_edges: List[CutEdge] = field(default_factory=list)
    avail_side: Dict[str, bool] = field(default_factory=dict)
    comp_side: Dict[str, bool] = field(default_factory=dict)


def _item_label(item) -> Tuple[str, str]:
    """``(label, node)`` rendering of a project-selection item or sentinel."""
    if item == SOURCE or item == SINK:
        return str(item), ""
    kind, node = item
    return f"{kind}:{node}", node


def build_selection_instance(
    dag: Dag, costs: Mapping[str, NodeCosts], outputs: Sequence[str]
) -> ProjectSelectionInstance:
    """The project-selection instance behind :func:`optimal_plan`.

    Two boolean items per node: ``("avail", n)`` — the node's result is
    available this iteration (loaded or computed), with cost ``l_n`` — and
    ``("comp", n)`` — the node is computed, with profit ``l_n − c_n``.
    Prerequisites encode ``comp ⇒ avail`` for the node itself (computing makes
    it available, and it must not also pay a load) and ``comp ⇒ avail(parent)``
    for every parent (the prune constraint).  Nodes without a materialized
    artifact get an effectively-infinite load cost; outputs get an overwhelming
    bonus on their ``avail`` item so they are always available.

    Exposed so tests (and curious users) can rebuild the exact flow network a
    plan's recorded cut certificate came from.
    """
    _validate_inputs(dag, costs, outputs)

    total_compute = sum(costs[name].compute_cost for name in dag.nodes())
    total_finite_load = sum(costs[name].load_cost for name in dag.nodes() if costs[name].materialized)
    large = total_compute + total_finite_load + 1.0
    force = 2.0 * large * (len(dag) + 1) + 1.0

    def effective_load(name: str) -> float:
        return costs[name].load_cost if costs[name].materialized else large

    instance = ProjectSelectionInstance()
    output_set = set(outputs)
    for name in dag.nodes():
        load_cost = effective_load(name)
        avail_profit = -load_cost + (force if name in output_set else 0.0)
        instance.add_item(("avail", name), avail_profit)
        instance.add_item(("comp", name), load_cost - costs[name].compute_cost)
        instance.add_prerequisite(("comp", name), ("avail", name))
    for parent, child in dag.edges():
        instance.add_prerequisite(("comp", child), ("avail", parent))
    return instance


def optimal_plan_explained(
    dag: Dag,
    costs: Mapping[str, NodeCosts],
    outputs: Sequence[str],
    registry=None,
    solver=None,
) -> Tuple[Dict[str, NodeState], PlanExplanation]:
    """Optimal state assignment plus its min-cut certificate.

    Same algorithm as :func:`optimal_plan` (see
    :func:`build_selection_instance` for the reduction), additionally
    returning the :class:`PlanExplanation` that the explain/trace subsystem
    records: cut value, saturated cut edges mapped back to node items, and
    each node's side of the cut.  ``registry`` (optional) receives the
    max-flow solve time and cut size as ``repro_optimizer_*`` series;
    defaults to the process-wide metrics registry.  ``solver`` (optional)
    replaces :func:`solve_project_selection` — the compiled hot path passes a
    :class:`~repro.compile.warmcut.WarmCutSolver` here to warm-start
    successive structurally identical solves; any solver must return an
    exact :class:`~repro.optimizer.project_selection.ProjectSelectionSolution`.
    """
    metrics = registry if registry is not None else get_registry()
    solve_started = time.perf_counter()
    instance = build_selection_instance(dag, costs, outputs)
    solution = (solver or solve_project_selection)(instance)
    selected = solution.selected
    if metrics.enabled:
        metrics.histogram(
            "repro_optimizer_solve_seconds",
            help="Wall-clock seconds of each project-selection/max-flow solve.",
        ).observe(time.perf_counter() - solve_started)
        metrics.counter(
            "repro_optimizer_solves_total",
            help="Project-selection solves performed.",
        ).inc()
        metrics.histogram(
            "repro_optimizer_cut_edges",
            help="Saturated edges crossing the min cut, per solve.",
            buckets=COUNT_BUCKETS,
        ).observe(len(solution.cut_edges))
        metrics.gauge(
            "repro_optimizer_last_cut_value",
            help="Cut value (optimal plan cost) of the most recent solve.",
        ).set(solution.cut_value if solution.cut_value != float("inf") else -1.0)

    states: Dict[str, NodeState] = {}
    for name in dag.nodes():
        if ("comp", name) in selected:
            states[name] = NodeState.COMPUTE
        elif ("avail", name) in selected:
            states[name] = NodeState.LOAD
        else:
            states[name] = NodeState.PRUNE

    _prune_useless_loads(dag, outputs, states)
    validate_states(dag, costs, outputs, states)

    explanation = PlanExplanation(cut_value=solution.cut_value)
    for from_item, to_item, capacity in solution.cut_edges:
        from_label, from_node = _item_label(from_item)
        to_label, to_node = _item_label(to_item)
        explanation.cut_edges.append(
            CutEdge(source=from_label, target=to_label, capacity=capacity, node=from_node or to_node)
        )
    for name in dag.nodes():
        explanation.avail_side[name] = ("avail", name) in selected
        explanation.comp_side[name] = ("comp", name) in selected
    return states, explanation


def optimal_plan(
    dag: Dag,
    costs: Mapping[str, NodeCosts],
    outputs: Sequence[str],
) -> Dict[str, NodeState]:
    """Optimal state assignment via the project-selection reduction.

    The certificate-free form of :func:`optimal_plan_explained`; see
    :func:`build_selection_instance` for the reduction itself.
    """
    states, _explanation = optimal_plan_explained(dag, costs, outputs)
    return states


def _prune_useless_loads(dag: Dag, outputs: Sequence[str], states: Dict[str, NodeState]) -> None:
    """Demote zero-benefit LOAD nodes (no computed child, not an output) to PRUNE.

    The min-cut solution may keep a free (zero-load-cost) node available even
    when nothing consumes it; pruning it does not change the objective but
    keeps plans tidy.  Processing in reverse topological order propagates the
    cleanup through chains of such nodes.
    """
    output_set = set(outputs)
    for name in reversed(dag.topological_order()):
        if states[name] is not NodeState.LOAD or name in output_set:
            continue
        has_computed_child = any(states[child] is NodeState.COMPUTE for child in dag.children(name))
        if not has_computed_child:
            states[name] = NodeState.PRUNE


# ---------------------------------------------------------------------------
# Heuristic / trivial policies
# ---------------------------------------------------------------------------
def _plan_from_load_set(dag: Dag, outputs: Sequence[str], load_set: Set[str]) -> Dict[str, NodeState]:
    """Backward traversal from outputs: loaded nodes cut off their ancestors."""
    states: Dict[str, NodeState] = {name: NodeState.PRUNE for name in dag.nodes()}
    stack: List[str] = list(outputs)
    while stack:
        name = stack.pop()
        if states[name] is not NodeState.PRUNE:
            continue
        if name in load_set:
            states[name] = NodeState.LOAD
        else:
            states[name] = NodeState.COMPUTE
            stack.extend(dag.parents(name))
    return states


def compute_all_plan(dag: Dag, costs: Mapping[str, NodeCosts], outputs: Sequence[str]) -> Dict[str, NodeState]:
    """Recompute everything the outputs need (the no-reuse policy, e.g. KeystoneML)."""
    _validate_inputs(dag, costs, outputs)
    states = _plan_from_load_set(dag, outputs, set())
    validate_states(dag, costs, outputs, states)
    return states


def reuse_all_plan(dag: Dag, costs: Mapping[str, NodeCosts], outputs: Sequence[str]) -> Dict[str, NodeState]:
    """Load every needed node that is materialized (the DeepDive-style policy)."""
    _validate_inputs(dag, costs, outputs)
    load_set = {name for name in dag.nodes() if costs[name].materialized}
    states = _plan_from_load_set(dag, outputs, load_set)
    validate_states(dag, costs, outputs, states)
    return states


def greedy_plan(dag: Dag, costs: Mapping[str, NodeCosts], outputs: Sequence[str]) -> Dict[str, NodeState]:
    """Per-node greedy heuristic used as an ablation baseline.

    A materialized node is loaded when its load cost is smaller than the cost
    of computing it from scratch (its own compute cost plus all ancestors'),
    ignoring sharing between siblings — which is exactly the approximation the
    exact algorithm improves on.
    """
    _validate_inputs(dag, costs, outputs)
    load_set: Set[str] = set()
    for name in dag.nodes():
        if not costs[name].materialized:
            continue
        subtree_compute = costs[name].compute_cost + sum(
            costs[ancestor].compute_cost for ancestor in dag.ancestors(name)
        )
        if costs[name].load_cost < subtree_compute:
            load_set.add(name)
    states = _plan_from_load_set(dag, outputs, load_set)
    validate_states(dag, costs, outputs, states)
    return states


# ---------------------------------------------------------------------------
# Reference brute force (tests only)
# ---------------------------------------------------------------------------
def exhaustive_plan(
    dag: Dag,
    costs: Mapping[str, NodeCosts],
    outputs: Sequence[str],
    max_nodes: int = 14,
) -> Tuple[Dict[str, NodeState], float]:
    """Enumerate every feasible assignment; exponential, for cross-checking only."""
    _validate_inputs(dag, costs, outputs)
    names = dag.nodes()
    if len(names) > max_nodes:
        raise OptimizerError(f"exhaustive search limited to {max_nodes} nodes, got {len(names)}")
    best_states: Dict[str, NodeState] = {}
    best_cost = float("inf")
    choices: List[List[NodeState]] = []
    for name in names:
        options = [NodeState.COMPUTE, NodeState.PRUNE]
        if costs[name].materialized:
            options.append(NodeState.LOAD)
        choices.append(options)
    for assignment in itertools.product(*choices):
        states = dict(zip(names, assignment))
        try:
            validate_states(dag, costs, outputs, states)
        except PlanError:
            continue
        cost = plan_cost(states, costs)
        if cost < best_cost:
            best_cost = cost
            best_states = states
    if not best_states:
        raise OptimizerError("no feasible assignment found (should be impossible)")
    return best_states, best_cost
