"""Benchmark harness: runs workloads under multiple strategies and prints the paper's tables.

The modules under ``benchmarks/`` (pytest-benchmark targets) are thin wrappers
around :func:`~repro.bench.harness.run_simulated_comparison` and
:func:`~repro.bench.harness.run_real_comparison`; the same functions are
importable for ad-hoc experimentation.
"""

from repro.bench.harness import ComparisonResult, run_real_comparison, run_simulated_comparison
from repro.bench.reporting import cumulative_table, format_table, ratio_summary

__all__ = [
    "ComparisonResult",
    "run_simulated_comparison",
    "run_real_comparison",
    "format_table",
    "cumulative_table",
    "ratio_summary",
]
