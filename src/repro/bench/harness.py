"""Experiment runner: one workload, several systems, cumulative-runtime comparison.

``run_simulated_comparison`` replays a cost-annotated workload through the
virtual-clock simulator once per strategy; ``run_real_comparison`` executes a
real workload end to end through one :class:`~repro.core.session.HelixSession`
per strategy (each with its own workspace, so systems never share artifacts).
Both return a :class:`ComparisonResult` that renders the Figure-2-style table.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.baselines.strategies import ExecutionStrategy
from repro.bench.reporting import cumulative_table, format_table, ratio_summary
from repro.core.session import HelixSession
from repro.execution.simulator import SimIteration
from repro.execution.stats import IterationReport
from repro.optimizer.cost_model import CostDefaults
from repro.workloads.spec import WorkloadSpec


@dataclass
class ComparisonResult:
    """Per-system iteration reports for one workload."""

    workload: str
    reports_by_system: Dict[str, List[IterationReport]] = field(default_factory=dict)
    categories: List[str] = field(default_factory=list)
    descriptions: List[str] = field(default_factory=list)

    # -- accessors -------------------------------------------------------
    def systems(self) -> List[str]:
        return list(self.reports_by_system)

    def runtimes(self, system: str) -> List[float]:
        return [report.total_runtime for report in self.reports_by_system[system]]

    def runtimes_by_system(self) -> Dict[str, List[float]]:
        return {system: self.runtimes(system) for system in self.reports_by_system}

    def cumulative(self, system: str) -> float:
        return sum(self.runtimes(system))

    def wall_clock_runtimes(self, system: str) -> List[float]:
        """Per-iteration elapsed times (0.0 entries when not recorded)."""
        return [report.wall_clock_runtime for report in self.reports_by_system[system]]

    def cumulative_wall_clock(self, system: str) -> float:
        return sum(self.wall_clock_runtimes(system))

    def parallel_speedup(self, system: str) -> float:
        """Cumulative node time over cumulative wall clock — the true speedup
        realized by the wavefront scheduler for ``system`` (1.0 when
        wall-clock times were not recorded)."""
        wall = self.cumulative_wall_clock(system)
        if wall <= 0.0:
            return 1.0
        return self.cumulative(system) / wall

    def cumulative_by_system(self) -> Dict[str, float]:
        return {system: self.cumulative(system) for system in self.reports_by_system}

    def speedup_over(self, other_system: str, reference: str = "helix") -> float:
        """How many times larger the other system's cumulative runtime is."""
        reference_total = self.cumulative(reference)
        if reference_total <= 0:
            return float("inf")
        return self.cumulative(other_system) / reference_total

    def ratios(self, reference: str = "helix") -> Dict[str, float]:
        return ratio_summary(self.runtimes_by_system(), reference=reference)

    def metrics(self, system: str) -> List[Dict[str, float]]:
        return [dict(report.metrics) for report in self.reports_by_system[system]]

    # -- rendering -------------------------------------------------------
    def table_rows(self) -> List[Dict[str, object]]:
        return cumulative_table(self.runtimes_by_system(), categories=self.categories, descriptions=self.descriptions)

    def render(self) -> str:
        lines = [f"Workload: {self.workload}"]
        lines.append(format_table(self.table_rows()))
        lines.append("")
        lines.append("Cumulative runtime (s): " + ", ".join(
            f"{system}={total:.1f}" for system, total in self.cumulative_by_system().items()
        ))
        if "helix" in self.reports_by_system:
            ratios = self.ratios("helix")
            lines.append("Ratio to HELIX: " + ", ".join(
                f"{system}={ratio:.2f}x" for system, ratio in ratios.items() if system != "helix"
            ))
        return "\n".join(lines)


def run_simulated_comparison(
    workload_name: str,
    iterations: Sequence[SimIteration],
    strategies: Sequence[ExecutionStrategy],
    storage_budget: float = float("inf"),
    defaults: CostDefaults = CostDefaults(),
    parallelism: int = 1,
) -> ComparisonResult:
    """Replay ``iterations`` once per strategy through the virtual-clock simulator.

    ``parallelism`` models the wavefront scheduler's worker count: the
    simulator reports a per-iteration ``wall_clock_runtime`` packed onto that
    many virtual workers while ``total_runtime`` (the paper's metric) stays
    the serial cumulative cost.
    """
    result = ComparisonResult(
        workload=workload_name,
        categories=[iteration.category for iteration in iterations],
        descriptions=[iteration.description for iteration in iterations],
    )
    for strategy in strategies:
        simulator = strategy.simulator(
            storage_budget=storage_budget, defaults=defaults, parallelism=parallelism
        )
        simulation = simulator.run(list(iterations))
        result.reports_by_system[strategy.name] = simulation.reports
    return result


def run_real_comparison(
    workload: WorkloadSpec,
    strategies: Sequence[ExecutionStrategy],
    workspace_root: Optional[str] = None,
    storage_budget: Optional[float] = None,
    backend: str = "serial",
    parallelism: int = 1,
    partitions: Optional[int] = None,
    store_backend: Optional[str] = None,
    memory_tier_mb: Optional[float] = None,
    codec: str = "auto",
    compiled: bool = False,
) -> ComparisonResult:
    """Execute a real workload end to end, once per strategy, in isolated workspaces.

    ``backend``/``parallelism`` select the wavefront scheduler's worker pool
    and ``partitions`` its intra-operator partition count for every session
    (see :mod:`repro.execution.scheduler`); results are backend-independent,
    only wall-clock time changes.  ``store_backend`` / ``memory_tier_mb`` /
    ``codec`` configure the storage layer under every session's artifact
    store (see :mod:`repro.storage`); results are storage-independent too.
    ``compiled`` turns on every session's compiled hot path (operator fusion,
    plan caching, warm-started min-cut; see :mod:`repro.compile`).
    """
    if workspace_root is None:
        workspace_root = tempfile.mkdtemp(prefix="helix_bench_")
    result = ComparisonResult(
        workload=workload.name,
        categories=workload.categories(),
        descriptions=[spec.description for spec in workload.iterations],
    )
    for strategy in strategies:
        workspace = os.path.join(workspace_root, strategy.name)
        session = HelixSession(
            workspace=workspace,
            strategy=strategy,
            storage_budget=storage_budget,
            backend=backend,
            parallelism=parallelism,
            partitions=partitions,
            store_backend=store_backend,
            memory_tier_mb=memory_tier_mb,
            codec=codec,
            compiled=compiled,
        )
        reports: List[IterationReport] = []
        for spec in workload.iterations:
            run = session.run(spec.build(), description=spec.description, change_category=spec.category)
            reports.append(run.report)
        result.reports_by_system[strategy.name] = reports
    return result
