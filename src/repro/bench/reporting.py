"""Plain-text table rendering for benchmark results."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_table(rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render dictionaries as an aligned ASCII table (one row per dict)."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {column: len(str(column)) for column in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            text = f"{value:.3f}" if isinstance(value, float) else str(value)
            widths[column] = max(widths[column], len(text))
            cells.append(text)
        rendered_rows.append(cells)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    body = [" | ".join(cell.ljust(widths[column]) for cell, column in zip(cells, columns)) for cells in rendered_rows]
    return "\n".join([header, separator] + body)


def cumulative_table(
    runtimes_by_system: Mapping[str, Sequence[float]],
    categories: Optional[Sequence[str]] = None,
    descriptions: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Build the Figure-2-style table: one row per iteration, cumulative runtime per system."""
    systems = list(runtimes_by_system)
    n_iterations = max((len(values) for values in runtimes_by_system.values()), default=0)
    rows: List[Dict[str, object]] = []
    cumulative = {system: 0.0 for system in systems}
    for index in range(n_iterations):
        row: Dict[str, object] = {"iteration": index + 1}
        if categories is not None and index < len(categories):
            row["category"] = categories[index]
        if descriptions is not None and index < len(descriptions):
            row["description"] = descriptions[index]
        for system in systems:
            values = runtimes_by_system[system]
            if index < len(values):
                cumulative[system] += values[index]
                row[f"{system}_iter"] = round(values[index], 3)
                row[f"{system}_cum"] = round(cumulative[system], 3)
            else:
                row[f"{system}_iter"] = None
                row[f"{system}_cum"] = None
        rows.append(row)
    return rows


def ratio_summary(runtimes_by_system: Mapping[str, Sequence[float]], reference: str = "helix") -> Dict[str, float]:
    """Cumulative-runtime ratio of every system to the reference system."""
    totals = {system: sum(values) for system, values in runtimes_by_system.items()}
    reference_total = totals.get(reference, 0.0)
    if reference_total <= 0:
        return {system: float("inf") for system in totals}
    return {system: total / reference_total for system, total in totals.items()}
