"""Row-wise chunking of the values that flow through a compiled DAG.

The partition-aware scheduler never rewrites operators — it rewrites their
*inputs*: a value is split into N row-aligned chunks, the operator runs once
per chunk, and the chunk outputs travel downstream as a
:class:`PartitionedValue`.  This module is the type-directed protocol behind
that: which values can be split, how they split, and how chunks merge back.

Two invariants make the scheme correct:

* **Alignment.**  Chunk boundaries are a pure function of collection length
  (:func:`~repro.partition.partitioner.block_slices`), so two aligned
  inputs of equal length always split into row-aligned chunks.  When an
  upstream operator changed per-chunk cardinality (a tokenizer emitting a
  variable number of sentences per document chunk), downstream plain inputs
  are split *by the existing chunks' shape* instead (``split_value`` with an
  explicit ``shape``), and inputs whose shapes disagree force the scheduler
  to fall back to a coalesce barrier.
* **Order preservation.**  ``merge_value(split_value(v, n)) == v`` up to
  object identity: chunks concatenate in index order, so a partitioned run
  produces byte-identical downstream inputs to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dataflow.collection import DataCollection, Dataset
from repro.dataflow.features import ExampleCollection, FeatureBlock, LabelBlock, PredictionSet
from repro.dataflow.sequences import (
    SequenceCorpus,
    SequenceExampleSet,
    SequenceFeatureBlock,
    SequencePredictions,
)
from repro.errors import DataError
from repro.partition.partitioner import PartitionedCollection, block_slices


@dataclass
class PartitionedValue:
    """One DAG node's output held as N partition chunks."""

    chunks: List[Any]

    @property
    def n_partitions(self) -> int:
        return len(self.chunks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartitionedValue(n={len(self.chunks)}, kind={type(self.chunks[0]).__name__ if self.chunks else '?'})"


#: A chunk shape: per-chunk row counts, one tuple per row axis ("train"/"test"
#: for split-carrying values, a single axis for flat collections).
Shape = Tuple[Tuple[int, ...], ...]


def _split_list(rows: Sequence[Any], counts: Sequence[int]) -> List[List[Any]]:
    if sum(counts) != len(rows):
        raise DataError(f"shape wants {sum(counts)} rows but value has {len(rows)}")
    out = []
    start = 0
    for count in counts:
        out.append(list(rows[start:start + count]))
        start += count
    return out


def _block_counts(n_items: int, n_parts: int) -> Tuple[int, ...]:
    return tuple(end - start for start, end in block_slices(n_items, n_parts))


def _two_axis(value: Any) -> Optional[Tuple[List[Any], List[Any]]]:
    """(train rows, test rows) for split-carrying values, else ``None``."""
    if isinstance(value, (Dataset, FeatureBlock, LabelBlock, SequenceCorpus, SequenceFeatureBlock)):
        return list(value.train), list(value.test)
    if isinstance(value, ExampleCollection):
        return list(value.features.train), list(value.features.test)
    if isinstance(value, SequenceExampleSet):
        return list(value.features.train), list(value.features.test)
    if isinstance(value, PredictionSet):
        return list(value.train_predictions), list(value.test_predictions)
    if isinstance(value, SequencePredictions):
        return list(value.train_predictions), list(value.test_predictions)
    return None


def axis_rows(value: Any) -> Optional[List[List[Any]]]:
    """The value's rows, one list per row axis, or ``None`` if not row-shaped.

    Split-carrying values answer ``[train rows, test rows]``; flat
    collections answer a single axis.  This is the row view the incremental
    delta detector fingerprints: hashing axis-by-axis in this order matches
    exactly how :func:`split_value` slices the value into chunks.
    """
    two = _two_axis(value)
    if two is not None:
        return [two[0], two[1]]
    if isinstance(value, PartitionedCollection):
        return [list(value.coalesce())]
    if isinstance(value, DataCollection):
        return [list(value.records())]
    if isinstance(value, list):
        return [list(value)]
    return None


def is_splittable(value: Any) -> bool:
    """True when :func:`split_value` can chunk ``value`` row-wise."""
    return (
        isinstance(
            value,
            (
                DataCollection,
                Dataset,
                FeatureBlock,
                LabelBlock,
                ExampleCollection,
                PredictionSet,
                SequenceCorpus,
                SequenceFeatureBlock,
                SequenceExampleSet,
                SequencePredictions,
                PartitionedCollection,
                list,
            ),
        )
        and not isinstance(value, str)
    )


def shape_of(value: Any) -> Optional[Shape]:
    """Row-count shape of one (unsplit) value, or ``None`` if not splittable."""
    two = _two_axis(value)
    if two is not None:
        return ((len(two[0]),), (len(two[1]),))
    if isinstance(value, PartitionedCollection):
        return (tuple(value.sizes()),)
    if isinstance(value, DataCollection):
        return ((len(value),),)
    if isinstance(value, list):
        return ((len(value),),)
    return None


def shape_of_chunks(chunks: Sequence[Any]) -> Optional[Shape]:
    """Per-chunk row counts of an already-chunked value."""
    axes: Optional[List[List[int]]] = None
    for chunk in chunks:
        chunk_shape = shape_of(chunk)
        if chunk_shape is None:
            return None
        if axes is None:
            axes = [[] for _ in chunk_shape]
        if len(axes) != len(chunk_shape):
            return None
        for axis, counts in zip(axes, chunk_shape):
            axis.extend(counts)
    if axes is None:
        return None
    return tuple(tuple(axis) for axis in axes)


def split_value(value: Any, n_partitions: int, shape: Optional[Shape] = None) -> Optional[List[Any]]:
    """Split ``value`` into ``n_partitions`` row-aligned chunks.

    With ``shape`` (per-chunk row counts from an already-partitioned sibling
    input), the split follows those exact boundaries; otherwise balanced
    contiguous blocks are used.  Returns ``None`` when the value is not
    row-splittable (models, metric dicts, scalars) or when the requested
    shape cannot apply — the caller then broadcasts or coalesces.
    """
    try:
        return _split(value, n_partitions, shape)
    except DataError:
        return None


def _axis_counts(n_items: int, n_partitions: int, shape: Optional[Shape], axis: int) -> Sequence[int]:
    if shape is None:
        return _block_counts(n_items, n_partitions)
    if axis >= len(shape) or len(shape[axis]) != n_partitions:
        raise DataError("shape does not match the requested partition count")
    return shape[axis]


def _split(value: Any, n: int, shape: Optional[Shape]) -> Optional[List[Any]]:
    if isinstance(value, PartitionedCollection):
        if value.n_partitions != n:
            return _split(value.coalesce(), n, shape)
        return list(value.parts)
    if isinstance(value, Dataset):
        trains = _split_list(value.train.records(), _axis_counts(len(value.train), n, shape, 0))
        tests = _split_list(value.test.records(), _axis_counts(len(value.test), n, shape, 1))
        return [
            Dataset(
                train=DataCollection(trains[i], schema=value.train.schema, name=value.train.name),
                test=DataCollection(tests[i], schema=value.test.schema, name=value.test.name),
                name=value.name,
            )
            for i in range(n)
        ]
    if isinstance(value, DataCollection):
        parts = _split_list(value.records(), _axis_counts(len(value), n, shape, 0))
        return [DataCollection(part, schema=value.schema, name=value.name) for part in parts]
    if isinstance(value, (FeatureBlock, SequenceFeatureBlock)):
        trains = _split_list(value.train, _axis_counts(len(value.train), n, shape, 0))
        tests = _split_list(value.test, _axis_counts(len(value.test), n, shape, 1))
        return [type(value)(name=value.name, train=trains[i], test=tests[i]) for i in range(n)]
    if isinstance(value, LabelBlock):
        trains = _split_list(value.train, _axis_counts(len(value.train), n, shape, 0))
        tests = _split_list(value.test, _axis_counts(len(value.test), n, shape, 1))
        return [LabelBlock(name=value.name, train=trains[i], test=tests[i]) for i in range(n)]
    if isinstance(value, ExampleCollection):
        features = _split(value.features, n, shape)
        labels = _split(value.labels, n, shape)
        return [
            ExampleCollection(features=features[i], labels=labels[i], name=value.name) for i in range(n)
        ]
    if isinstance(value, SequenceCorpus):
        trains = _split_list(value.train, _axis_counts(len(value.train), n, shape, 0))
        tests = _split_list(value.test, _axis_counts(len(value.test), n, shape, 1))
        return [SequenceCorpus(name=value.name, train=trains[i], test=tests[i]) for i in range(n)]
    if isinstance(value, SequenceExampleSet):
        features = _split(value.features, n, shape)
        corpus = _split(value.corpus, n, shape)
        return [
            SequenceExampleSet(features=features[i], corpus=corpus[i], name=value.name)
            for i in range(n)
        ]
    if isinstance(value, PredictionSet):
        train_p = _split_list(value.train_predictions, _axis_counts(len(value.train_predictions), n, shape, 0))
        train_l = _split_list(value.train_labels, _axis_counts(len(value.train_labels), n, shape, 0))
        test_p = _split_list(value.test_predictions, _axis_counts(len(value.test_predictions), n, shape, 1))
        test_l = _split_list(value.test_labels, _axis_counts(len(value.test_labels), n, shape, 1))
        return [
            PredictionSet(
                name=value.name,
                train_predictions=train_p[i],
                train_labels=train_l[i],
                test_predictions=test_p[i],
                test_labels=test_l[i],
            )
            for i in range(n)
        ]
    if isinstance(value, SequencePredictions):
        train_p = _split_list(value.train_predictions, _axis_counts(len(value.train_predictions), n, shape, 0))
        train_g = _split_list(value.train_gold, _axis_counts(len(value.train_gold), n, shape, 0))
        test_p = _split_list(value.test_predictions, _axis_counts(len(value.test_predictions), n, shape, 1))
        test_g = _split_list(value.test_gold, _axis_counts(len(value.test_gold), n, shape, 1))
        return [
            SequencePredictions(
                name=value.name,
                train_predictions=train_p[i],
                train_gold=train_g[i],
                test_predictions=test_p[i],
                test_gold=test_g[i],
            )
            for i in range(n)
        ]
    if isinstance(value, list):
        return _split_list(value, _axis_counts(len(value), n, shape, 0))
    return None


def merge_value(chunks: Sequence[Any]) -> Any:
    """Concatenate chunks back into one value (the inverse of :func:`split_value`).

    Dictionaries merge by key union — the output shape of shuffle-mode
    operators, whose co-located chunks produce disjoint key sets.
    """
    if not chunks:
        raise DataError("cannot merge an empty chunk list")
    first = chunks[0]
    if isinstance(first, Dataset):
        return Dataset(
            train=merge_value([c.train for c in chunks]),
            test=merge_value([c.test for c in chunks]),
            name=first.name,
        )
    if isinstance(first, DataCollection):
        return DataCollection(
            [record for chunk in chunks for record in chunk],
            schema=first.schema,
            name=first.name,
        )
    if isinstance(first, (FeatureBlock, SequenceFeatureBlock)):
        return type(first)(
            name=first.name,
            train=[row for c in chunks for row in c.train],
            test=[row for c in chunks for row in c.test],
        )
    if isinstance(first, LabelBlock):
        return LabelBlock(
            name=first.name,
            train=[row for c in chunks for row in c.train],
            test=[row for c in chunks for row in c.test],
        )
    if isinstance(first, ExampleCollection):
        return ExampleCollection(
            features=merge_value([c.features for c in chunks]),
            labels=merge_value([c.labels for c in chunks]),
            name=first.name,
        )
    if isinstance(first, SequenceCorpus):
        return SequenceCorpus(
            name=first.name,
            train=[s for c in chunks for s in c.train],
            test=[s for c in chunks for s in c.test],
        )
    if isinstance(first, SequenceExampleSet):
        return SequenceExampleSet(
            features=merge_value([c.features for c in chunks]),
            corpus=merge_value([c.corpus for c in chunks]),
            name=first.name,
        )
    if isinstance(first, PredictionSet):
        return PredictionSet(
            name=first.name,
            train_predictions=[p for c in chunks for p in c.train_predictions],
            train_labels=[p for c in chunks for p in c.train_labels],
            test_predictions=[p for c in chunks for p in c.test_predictions],
            test_labels=[p for c in chunks for p in c.test_labels],
        )
    if isinstance(first, SequencePredictions):
        return SequencePredictions(
            name=first.name,
            train_predictions=[p for c in chunks for p in c.train_predictions],
            train_gold=[p for c in chunks for p in c.train_gold],
            test_predictions=[p for c in chunks for p in c.test_predictions],
            test_gold=[p for c in chunks for p in c.test_gold],
        )
    if isinstance(first, dict):
        merged: Dict[Any, Any] = {}
        for chunk in chunks:
            merged.update(chunk)
        return merged
    if isinstance(first, list):
        return [item for chunk in chunks for item in chunk]
    raise DataError(f"cannot merge chunks of type {type(first).__name__}")
