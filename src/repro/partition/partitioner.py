"""Record partitioners and the :class:`PartitionedCollection` they produce.

Helix workflows are mostly *linear* pipelines, so inter-node (wavefront)
parallelism rarely exceeds width 1-2.  Intra-operator parallelism instead
splits a collection into N partition shards and runs each operator once per
shard.  Three partitioner families cover the classic placements:

* :class:`RoundRobinPartitioner` — record ``i`` goes to shard ``i % n``;
  perfectly balanced, no co-location guarantees.  This is also the default
  for :meth:`PartitionedCollection.from_collection`.
* :class:`HashPartitioner` — records hash on a key tuple, so *equal keys
  always land in the same shard* (the property shuffles rely on).
* :class:`RangePartitioner` — records are placed by where a field's value
  falls among sorted boundary values; preserves sort locality for range
  scans.

The execution engine itself splits values *by contiguous block*
(:func:`block_slices`) because block splits keep row alignment across every
input of an operator and make ``coalesce`` a plain concatenation; the
partitioners here are the record-placement vocabulary used by the
collection API, the shuffle exchange, and the tests.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dataflow.collection import DataCollection, Schema
from repro.errors import DataError


def stable_hash(key: Any) -> int:
    """Deterministic, process-independent hash of a partitioning key.

    Python's builtin ``hash`` is salted per process (``PYTHONHASHSEED``),
    which would scatter equal keys across different shards in different
    worker processes; CRC-32 over the key's ``repr`` is stable everywhere.
    Keys should be scalars or tuples of scalars so their ``repr`` is
    canonical.
    """
    return zlib.crc32(repr(key).encode("utf-8"))


def block_slices(n_items: int, n_parts: int) -> List[Tuple[int, int]]:
    """Balanced contiguous ``(start, end)`` slices, ``numpy.array_split`` style.

    The first ``n_items % n_parts`` slices get one extra item; slices may be
    empty when there are fewer items than parts.  Because the boundaries are
    a pure function of ``(n_items, n_parts)``, any two aligned collections
    of equal length split into row-aligned blocks.
    """
    if n_parts < 1:
        raise DataError(f"need at least one partition, got {n_parts}")
    base, extra = divmod(n_items, n_parts)
    slices = []
    start = 0
    for index in range(n_parts):
        size = base + (1 if index < extra else 0)
        slices.append((start, start + size))
        start += size
    return slices


class Partitioner:
    """Assigns records to one of ``n_partitions`` shards."""

    name = "base"

    def assign(self, record: Dict[str, Any], index: int, n_partitions: int) -> int:
        """Shard index for ``record`` (``index`` is its position in the source)."""
        raise NotImplementedError

    def partition(self, collection: DataCollection, n_partitions: int) -> "PartitionedCollection":
        """Distribute ``collection`` into shards according to :meth:`assign`."""
        if n_partitions < 1:
            raise DataError(f"need at least one partition, got {n_partitions}")
        shards: List[List[Dict[str, Any]]] = [[] for _ in range(n_partitions)]
        for index, record in enumerate(collection):
            target = self.assign(record, index, n_partitions)
            if not 0 <= target < n_partitions:
                raise DataError(
                    f"partitioner {self.name!r} assigned record {index} to shard {target} "
                    f"(expected 0..{n_partitions - 1})"
                )
            shards[target].append(record)
        return PartitionedCollection(
            [
                DataCollection(records, schema=collection.schema, name=f"{collection.name}.p{i}")
                for i, records in enumerate(shards)
            ],
            partitioner=self,
            name=collection.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class RoundRobinPartitioner(Partitioner):
    """Record ``i`` goes to shard ``i % n``: perfectly balanced, key-blind."""

    name = "roundrobin"

    def assign(self, record: Dict[str, Any], index: int, n_partitions: int) -> int:
        return index % n_partitions


class HashPartitioner(Partitioner):
    """Hash on a key tuple so equal keys co-locate in one shard."""

    name = "hash"

    def __init__(self, key_fields: Sequence[str]) -> None:
        if not key_fields:
            raise DataError("HashPartitioner requires at least one key field")
        self.key_fields = list(key_fields)

    def key_of(self, record: Dict[str, Any]) -> Tuple[Any, ...]:
        try:
            return tuple(record[field] for field in self.key_fields)
        except KeyError as exc:
            raise DataError(f"record is missing hash-partition key field {exc.args[0]!r}") from exc

    def assign(self, record: Dict[str, Any], index: int, n_partitions: int) -> int:
        return stable_hash(self.key_of(record)) % n_partitions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashPartitioner(key_fields={self.key_fields!r})"


class RangePartitioner(Partitioner):
    """Places records by where ``field`` falls among sorted boundaries.

    ``boundaries`` holds ``n - 1`` split points: shard 0 gets values below
    ``boundaries[0]``, shard ``i`` gets values in
    ``[boundaries[i-1], boundaries[i])``, the last shard gets the rest.
    When no boundaries are given, :meth:`partition` derives equi-depth
    boundaries from the collection's own value distribution.
    """

    name = "range"

    def __init__(self, field: str, boundaries: Optional[Sequence[Any]] = None) -> None:
        self.field = field
        self.boundaries: Optional[List[Any]] = sorted(boundaries) if boundaries is not None else None

    def fit(self, collection: Iterable[Dict[str, Any]], n_partitions: int) -> "RangePartitioner":
        """Compute equi-depth boundaries from the observed values."""
        values = sorted(record[self.field] for record in collection)
        if not values:
            self.boundaries = []
            return self
        self.boundaries = [
            values[(len(values) * split) // n_partitions] for split in range(1, n_partitions)
        ]
        return self

    def assign(self, record: Dict[str, Any], index: int, n_partitions: int) -> int:
        if self.boundaries is None:
            raise DataError("RangePartitioner has no boundaries; call fit() or pass them explicitly")
        return min(bisect.bisect_right(self.boundaries, record[self.field]), n_partitions - 1)

    def partition(self, collection: DataCollection, n_partitions: int) -> "PartitionedCollection":
        if self.boundaries is None:
            self.fit(collection, n_partitions)
        return super().partition(collection, n_partitions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RangePartitioner(field={self.field!r})"


class PartitionedCollection:
    """N partition shards of one :class:`~repro.dataflow.collection.DataCollection`.

    The shards jointly hold every record of the source collection exactly
    once (a multiset-preserving split); ``coalesce`` concatenates them back
    in shard order.
    """

    def __init__(
        self,
        parts: Sequence[DataCollection],
        partitioner: Optional[Partitioner] = None,
        name: str = "data",
    ) -> None:
        if not parts:
            raise DataError("PartitionedCollection requires at least one shard")
        self.parts: List[DataCollection] = list(parts)
        self.partitioner = partitioner
        self.name = name

    # -- construction ----------------------------------------------------
    @classmethod
    def from_collection(
        cls,
        collection: DataCollection,
        n_partitions: int,
        partitioner: Optional[Partitioner] = None,
    ) -> "PartitionedCollection":
        return (partitioner or RoundRobinPartitioner()).partition(collection, n_partitions)

    # -- basic protocol --------------------------------------------------
    @property
    def n_partitions(self) -> int:
        return len(self.parts)

    @property
    def schema(self) -> Optional[Schema]:
        return self.parts[0].schema

    def __len__(self) -> int:
        return sum(len(part) for part in self.parts)

    def sizes(self) -> List[int]:
        """Record count of every shard (the balance profile)."""
        return [len(part) for part in self.parts]

    def records(self) -> List[Dict[str, Any]]:
        """Every record across all shards, in shard order."""
        return [record for part in self.parts for record in part]

    # -- transformations -------------------------------------------------
    def coalesce(self) -> DataCollection:
        """Concatenate the shards back into one collection."""
        return DataCollection(self.records(), schema=self.schema, name=self.name)

    def repartition(
        self, partitioner: Partitioner, n_partitions: Optional[int] = None
    ) -> "PartitionedCollection":
        """Redistribute every record under a new partitioner (multiset preserved)."""
        return partitioner.partition(self.coalesce(), n_partitions or self.n_partitions)

    def map_parts(self, fn: Callable[[int, DataCollection], DataCollection]) -> "PartitionedCollection":
        """Apply ``fn(shard_index, shard)`` to every shard."""
        return PartitionedCollection(
            [fn(index, part) for index, part in enumerate(self.parts)],
            partitioner=self.partitioner,
            name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartitionedCollection(name={self.name!r}, sizes={self.sizes()})"
