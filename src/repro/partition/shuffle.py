"""The shuffle boundary: hash exchange that co-locates equal keys.

Partition-wise execution keeps whatever record placement the upstream chunks
happen to have.  Operators that aggregate *by key* (group-by style) are only
correct when every record with the same key lives in the same chunk, so the
planner inserts an explicit exchange before them: each input chunk's records
are redistributed to chunk ``stable_hash(key) % n``.  The exchange is pure
data movement and runs on the scheduling thread; the operator then runs
partition-wise over the co-located chunks and its per-chunk outputs cover
disjoint key sets (which is why dictionary outputs merge by plain union).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence

from repro.dataflow.collection import DataCollection, Dataset
from repro.errors import DataError
from repro.partition.partitioner import stable_hash

KeyFn = Callable[[Dict[str, Any]], Any]


def exchange_records(
    chunks: Sequence[Sequence[Dict[str, Any]]], key_fn: KeyFn, n_partitions: int
) -> List[List[Dict[str, Any]]]:
    """Redistribute record chunks so equal keys co-locate.

    Deterministic: output order within a chunk follows input chunk order,
    then record order, and :func:`~repro.partition.partitioner.stable_hash`
    is process-independent.
    """
    out: List[List[Dict[str, Any]]] = [[] for _ in range(n_partitions)]
    for chunk in chunks:
        for record in chunk:
            out[stable_hash(key_fn(record)) % n_partitions].append(record)
    return out


def exchange_value(chunks: Sequence[Any], key_fn: KeyFn, n_partitions: int) -> List[Any]:
    """Hash-exchange a chunked value (Dataset, DataCollection, or record lists).

    Datasets exchange their train and test splits independently, so a split
    never leaks records into the other.
    """
    first = chunks[0]
    if isinstance(first, Dataset):
        trains = exchange_records([c.train.records() for c in chunks], key_fn, n_partitions)
        tests = exchange_records([c.test.records() for c in chunks], key_fn, n_partitions)
        return [
            Dataset(
                train=DataCollection(trains[i], schema=first.train.schema, name=first.train.name),
                test=DataCollection(tests[i], schema=first.test.schema, name=first.test.name),
                name=first.name,
            )
            for i in range(n_partitions)
        ]
    if isinstance(first, DataCollection):
        shards = exchange_records([c.records() for c in chunks], key_fn, n_partitions)
        return [
            DataCollection(shard, schema=first.schema, name=first.name) for shard in shards
        ]
    if isinstance(first, list):
        return [list(shard) for shard in exchange_records(chunks, key_fn, n_partitions)]
    raise DataError(f"cannot shuffle chunks of type {type(first).__name__}")
