"""Partial+merge combiners for aggregating operators.

An aggregating operator (metrics over every prediction, statistics over the
whole train split) cannot simply run once per chunk — its output depends on
*all* rows.  A :class:`Combiner` decomposes it the classic way:

* ``partial`` runs on every chunk in parallel and reduces the chunk to a
  small partial state (counts, min/max);
* ``merge`` folds the partial states into the operator's result on the
  scheduling thread;
* optionally ``finalize_chunk`` (when :attr:`Combiner.finalizes` is true)
  broadcasts the merged state back and produces a per-chunk output, keeping
  the value partitioned — the pattern for operators like the bucketizer
  whose *statistics* are global but whose *transform* is row-wise.

Every combiner must be numerically identical to the serial operator: the
partials carry integer counts or exact extrema, and the final division (or
edge computation) happens exactly once in ``merge``, so a partitioned run
reproduces the serial metrics bit for bit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

import numpy as np

from repro.dataflow.features import FeatureBlock, PredictionSet
from repro.dsl.ie_operators import SpanEvaluator
from repro.dsl.operators import Bucketizer, Evaluator
from repro.errors import ExecutionError
from repro.ml.metrics import bio_spans, prf_from_counts


class Combiner:
    """Decomposes one aggregating operator into partial / merge (/ finalize)."""

    #: True when ``merge`` produces a broadcast state that ``finalize_chunk``
    #: turns into per-chunk outputs; False when ``merge`` is the final value.
    finalizes = False

    def partial(self, operator: Any, inputs: Dict[str, Any]) -> Any:
        """Reduce one chunk's inputs to a small partial state (runs on workers)."""
        raise NotImplementedError

    def merge(self, operator: Any, partials: Sequence[Any]) -> Any:
        """Fold partial states; returns the final value (or broadcast state)."""
        raise NotImplementedError

    def finalize_chunk(self, operator: Any, state: Any, inputs: Dict[str, Any]) -> Any:
        """Per-chunk output from the merged state (only when ``finalizes``)."""
        raise NotImplementedError


class EvaluatorCombiner(Combiner):
    """Classification metrics from per-chunk confusion counts.

    ``accuracy = Σ correct / Σ total`` and precision/recall/F1 from summed
    tp/fp/fn are the identical integer arithmetic the serial
    :class:`~repro.dsl.operators.Evaluator` performs over the whole split.
    """

    def partial(self, operator: Evaluator, inputs: Dict[str, Any]) -> Dict[str, Dict[str, int]]:
        predictions: PredictionSet = inputs[operator.predictions]
        counts: Dict[str, Dict[str, int]] = {}
        positive = operator.positive_label
        for split in ("train", "test"):
            predicted, gold = predictions.split(split)
            counts[split] = {
                "total": len(gold),
                "correct": sum(1 for t, p in zip(gold, predicted) if t == p),
                "tp": sum(1 for t, p in zip(gold, predicted) if t == positive and p == positive),
                "fp": sum(1 for t, p in zip(gold, predicted) if t != positive and p == positive),
                "fn": sum(1 for t, p in zip(gold, predicted) if t == positive and p != positive),
            }
        return counts

    def merge(self, operator: Evaluator, partials: Sequence[Mapping[str, Mapping[str, int]]]) -> Dict[str, float]:
        results: Dict[str, float] = {}
        for split in ("train", "test"):
            totals = {key: sum(partial[split][key] for partial in partials) for key in ("total", "correct", "tp", "fp", "fn")}
            prf = prf_from_counts(totals["tp"], totals["fp"], totals["fn"])
            for metric in operator.metrics:
                if metric == "accuracy":
                    results[f"{split}_accuracy"] = totals["correct"] / totals["total"] if totals["total"] else 0.0
                elif metric == "f1":
                    results[f"{split}_f1"] = prf["f1"]
                elif metric == "precision":
                    results[f"{split}_precision"] = prf["precision"]
                elif metric == "recall":
                    results[f"{split}_recall"] = prf["recall"]
        return results


class SpanEvaluatorCombiner(Combiner):
    """Span-level IE metrics from per-chunk span-match counts."""

    def partial(self, operator: SpanEvaluator, inputs: Dict[str, Any]) -> Dict[str, Dict[str, int]]:
        predictions = inputs[operator.predictions]
        counts: Dict[str, Dict[str, int]] = {}
        for split in operator.splits:
            predicted, gold = predictions.split(split)
            true_positive = false_positive = false_negative = 0
            for gold_tags, predicted_tags in zip(gold, predicted):
                gold_spans = bio_spans(gold_tags)
                predicted_spans = bio_spans(predicted_tags)
                true_positive += len(gold_spans & predicted_spans)
                false_positive += len(predicted_spans - gold_spans)
                false_negative += len(gold_spans - predicted_spans)
            counts[split] = {"tp": true_positive, "fp": false_positive, "fn": false_negative}
        return counts

    def merge(self, operator: SpanEvaluator, partials: Sequence[Mapping[str, Mapping[str, int]]]) -> Dict[str, float]:
        results: Dict[str, float] = {}
        for split in operator.splits:
            totals = {key: sum(partial[split][key] for partial in partials) for key in ("tp", "fp", "fn")}
            for metric, value in prf_from_counts(totals["tp"], totals["fp"], totals["fn"]).items():
                results[f"{split}_{metric}"] = value
        return results


class BucketizerCombiner(Combiner):
    """Two-phase bucketizer: global train extrema, then row-wise bucketing.

    The partials find each chunk's train min/max; ``merge`` computes the
    exact edge vector the serial operator would (including the degenerate
    ``high == low`` widening); ``finalize_chunk`` buckets each chunk with the
    broadcast edges, so the output stays partitioned.
    """

    finalizes = True

    def partial(self, operator: Bucketizer, inputs: Dict[str, Any]) -> Dict[str, float]:
        block: FeatureBlock = inputs[operator.source]
        values = [row.get("value", 0.0) for row in block.train]
        if not values:
            return {"count": 0, "low": float("inf"), "high": float("-inf")}
        return {"count": len(values), "low": min(values), "high": max(values)}

    def merge(self, operator: Bucketizer, partials: Sequence[Mapping[str, float]]) -> np.ndarray:
        if sum(partial["count"] for partial in partials) == 0:
            raise ExecutionError("Bucketizer received an empty train split")
        low = min(partial["low"] for partial in partials)
        high = max(partial["high"] for partial in partials)
        if high == low:
            high = low + 1.0
        return np.linspace(low, high, operator.bins + 1)

    def finalize_chunk(self, operator: Bucketizer, state: np.ndarray, inputs: Dict[str, Any]) -> FeatureBlock:
        block: FeatureBlock = inputs[operator.source]
        edges = state

        def bucket(row: Mapping[str, float]) -> Dict[str, float]:
            value = row.get("value", 0.0)
            index = int(np.clip(np.searchsorted(edges, value, side="right") - 1, 0, operator.bins - 1))
            return {f"bucket={index}": 1.0}

        return FeatureBlock(
            name=f"{block.name}_bucket",
            train=[bucket(row) for row in block.train],
            test=[bucket(row) for row in block.test],
        )


class PartialApply:
    """Task-shaped wrapper: ``apply`` runs the combiner's partial phase.

    The worker backends only know how to call ``operator.apply(inputs)``;
    these wrappers let combiner phases travel through the same task tuple
    (and pickle cleanly for the process backend).
    """

    def __init__(self, combiner: Combiner, operator: Any) -> None:
        self.combiner = combiner
        self.operator = operator

    def apply(self, inputs: Dict[str, Any]) -> Any:
        return self.combiner.partial(self.operator, inputs)


class FinalizeApply:
    """Task-shaped wrapper: ``apply`` runs the combiner's finalize phase."""

    def __init__(self, combiner: Combiner, operator: Any, state: Any) -> None:
        self.combiner = combiner
        self.operator = operator
        self.state = state

    def apply(self, inputs: Dict[str, Any]) -> Any:
        return self.combiner.finalize_chunk(self.operator, self.state, inputs)


#: Operator type → combiner instance (combiners are stateless and shareable).
DEFAULT_COMBINERS: Dict[type, Combiner] = {
    Evaluator: EvaluatorCombiner(),
    SpanEvaluator: SpanEvaluatorCombiner(),
    Bucketizer: BucketizerCombiner(),
}
