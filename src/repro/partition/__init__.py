"""Partitioned data-parallel execution: intra-operator parallelism.

The subsystem has four layers, composed by the partition-aware path of the
:class:`~repro.execution.scheduler.WavefrontScheduler`:

* :mod:`repro.partition.partitioner` — record partitioners (hash /
  round-robin / range) and :class:`PartitionedCollection`;
* :mod:`repro.partition.chunks` — the type-directed split/merge protocol
  that chunks every DAG value row-wise and coalesces it back;
* :mod:`repro.partition.shuffle` — the hash exchange that co-locates equal
  keys ahead of group-by style operators;
* :mod:`repro.partition.combiners` / :mod:`repro.partition.planner` —
  partial+merge decompositions of aggregating operators and the planner
  that assigns every plan node its execution shape.

See ``docs/partitioning.md`` for the model and a worked example.
"""

from repro.partition.chunks import (
    PartitionedValue,
    is_splittable,
    merge_value,
    shape_of,
    shape_of_chunks,
    split_value,
)
from repro.partition.combiners import (
    BucketizerCombiner,
    Combiner,
    DEFAULT_COMBINERS,
    EvaluatorCombiner,
    SpanEvaluatorCombiner,
)
from repro.partition.partitioner import (
    HashPartitioner,
    PartitionedCollection,
    Partitioner,
    RangePartitioner,
    RoundRobinPartitioner,
    block_slices,
    stable_hash,
)
from repro.partition.planner import PartitionMode, PartitionPlanner
from repro.partition.shuffle import exchange_records, exchange_value

__all__ = [
    "BucketizerCombiner",
    "Combiner",
    "DEFAULT_COMBINERS",
    "EvaluatorCombiner",
    "HashPartitioner",
    "PartitionMode",
    "PartitionPlanner",
    "PartitionedCollection",
    "PartitionedValue",
    "Partitioner",
    "RangePartitioner",
    "RoundRobinPartitioner",
    "SpanEvaluatorCombiner",
    "block_slices",
    "exchange_records",
    "exchange_value",
    "is_splittable",
    "merge_value",
    "shape_of",
    "shape_of_chunks",
    "split_value",
    "stable_hash",
]
