"""The partition planner: which execution shape each plan node gets.

Given a compiled plan node, :class:`PartitionPlanner` picks one of four
shapes the partition-aware scheduler knows how to run:

``PARTITIONWISE``
    The operator is a row-wise function of its row-splittable inputs (maps,
    filters, projections, per-record feature extraction, prediction with a
    broadcast model): run it once per chunk, keep the output partitioned.
``COMBINE``
    The operator aggregates over all rows but decomposes into a
    partial+merge :class:`~repro.partition.combiners.Combiner` (metrics
    counts, scaler-style statistics); optionally a finalize phase keeps the
    output partitioned.
``SHUFFLE``
    The operator groups records *by key*: hash-exchange its single
    record-oriented input so equal keys co-locate, then run partition-wise.
    The operator declares its key via a ``shuffle_key(record)`` method.
``SINGLE``
    Everything else — model fits, stateful post-processing, operators whose
    inputs cannot be aligned — coalesces its inputs and runs as one task
    (the barrier that guarantees correctness by default).

An operator may override the registry with a ``partition_mode`` class
attribute (``"partitionwise"``, ``"combine"``, ``"shuffle"``, ``"single"``);
new operators outside the seed vocabulary use exactly that hook.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional, Tuple, Type

from repro.dsl.ie_operators import (
    SequenceFeatureAssembler,
    SequencePredictor,
    Tokenizer,
    _TokenFeatureOperator,
)
from repro.dsl.operators import (
    ClusterAssigner,
    CsvScanner,
    DenseFeaturizer,
    FeatureAssembler,
    FieldExtractor,
    InteractionFeature,
    LabelExtractor,
    Predictor,
    UDFFeatureExtractor,
)
from repro.errors import ExecutionError
from repro.partition.combiners import DEFAULT_COMBINERS, Combiner


class PartitionMode(enum.Enum):
    """Execution shape of one plan node under intra-operator parallelism."""

    SINGLE = "single"
    PARTITIONWISE = "partitionwise"
    COMBINE = "combine"
    SHUFFLE = "shuffle"


#: Seed operators that are row-wise functions of their splittable inputs.
PARTITIONWISE_TYPES: Tuple[Type, ...] = (
    CsvScanner,
    DenseFeaturizer,
    FieldExtractor,
    LabelExtractor,
    UDFFeatureExtractor,
    InteractionFeature,
    FeatureAssembler,
    Predictor,
    ClusterAssigner,
    Tokenizer,
    _TokenFeatureOperator,  # covers every token-level feature extractor
    SequenceFeatureAssembler,
    SequencePredictor,
)


class PartitionPlanner:
    """Classifies plan nodes and owns the combiner registry.

    Parameters
    ----------
    n_partitions:
        Number of chunks every partitioned value is held in.
    combiners:
        Operator type → :class:`Combiner`; defaults to the registry in
        :mod:`repro.partition.combiners`.
    """

    def __init__(
        self,
        n_partitions: int,
        combiners: Optional[Dict[type, Combiner]] = None,
    ) -> None:
        if n_partitions < 1:
            raise ExecutionError(f"need at least one partition, got {n_partitions}")
        self.n_partitions = n_partitions
        self.combiners: Dict[type, Combiner] = dict(DEFAULT_COMBINERS if combiners is None else combiners)
        # Classification is a pure function of the operator *type* unless the
        # instance itself carries partition hints, so the per-node isinstance
        # scans of a hot planning loop collapse to one dict probe per type.
        self._mode_memo: Dict[type, PartitionMode] = {}

    # ------------------------------------------------------------------
    def mode_for(self, operator: Any) -> PartitionMode:
        """The execution shape for ``operator`` (declaration wins over registry)."""
        instance_hinted = (
            "partition_mode" in getattr(operator, "__dict__", {})
            or "partition_combiner" in getattr(operator, "__dict__", {})
        )
        if not instance_hinted:
            cached = self._mode_memo.get(type(operator))
            if cached is not None:
                return cached
        hint = getattr(operator, "partition_mode", None)
        if hint is not None:
            mode = PartitionMode(hint) if not isinstance(hint, PartitionMode) else hint
            mode = self._validated(operator, mode)
        elif self.combiner_for(operator) is not None:
            mode = PartitionMode.COMBINE
        elif isinstance(operator, PARTITIONWISE_TYPES):
            mode = PartitionMode.PARTITIONWISE
        else:
            mode = PartitionMode.SINGLE
        if not instance_hinted:
            self._mode_memo[type(operator)] = mode
        return mode

    def _validated(self, operator: Any, mode: PartitionMode) -> PartitionMode:
        if mode is PartitionMode.SHUFFLE and not callable(getattr(operator, "shuffle_key", None)):
            raise ExecutionError(
                f"{type(operator).__name__} declares partition_mode='shuffle' but has no "
                "shuffle_key(record) method"
            )
        if mode is PartitionMode.COMBINE and self.combiner_for(operator) is None:
            raise ExecutionError(
                f"{type(operator).__name__} declares partition_mode='combine' but no combiner "
                "is registered for it (pass one via PartitionPlanner(combiners=...) or attach "
                "a partition_combiner attribute)"
            )
        return mode

    def combiner_for(self, operator: Any) -> Optional[Combiner]:
        """The combiner decomposing ``operator``, if any."""
        attached = getattr(operator, "partition_combiner", None)
        if attached is not None:
            return attached
        for operator_type, combiner in self.combiners.items():
            if isinstance(operator, operator_type):
                return combiner
        return None
