"""The Census classification workload (the paper's Figure 1a / Figure 2b application).

``build_census_workflow`` constructs one version of the Census workflow from a
:class:`CensusVariant`; ``census_workload`` returns the 10-iteration sequence
used in the evaluation, alternating data-pre-processing (purple), ML (orange),
and post-processing (green) changes exactly like the paper's narrative:
changing the regularization should only retrain the model, adding a feature
re-runs only that extractor and everything downstream, changing metrics should
reuse nearly everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.datagen.census import CENSUS_FIELDS, CensusConfig
from repro.dsl.operators import (
    Bucketizer,
    CsvScanner,
    DenseFeaturizer,
    Evaluator,
    FeatureAssembler,
    FieldExtractor,
    InteractionFeature,
    LabelExtractor,
    Learner,
    Predictor,
    Reducer,
    SyntheticCensusSource,
)
from repro.dsl.workflow import Workflow
from repro.workloads.spec import IterationSpec, WorkloadSpec

NUMERIC_FIELDS = ("age", "education_num", "capital_gain", "capital_loss", "hours_per_week", "target")


@dataclass(frozen=True)
class CensusVariant:
    """Knobs that the iteration sequence turns.

    Every field maps to a concrete edit a data scientist would make; the
    defaults describe the initial version of the workflow.
    """

    data_config: CensusConfig = CensusConfig()
    use_marital_status: bool = False
    use_capital_gain: bool = False
    use_hours_interaction: bool = False
    age_bins: int = 10
    model_type: str = "logistic_regression"
    reg_param: float = 0.1
    learning_rate: float = 0.5
    max_iter: int = 150
    metrics: Sequence[str] = ("accuracy",)
    include_error_report: bool = False


def build_census_workflow(variant: CensusVariant = CensusVariant()) -> Workflow:
    """Construct one version of the Census workflow (compare with Figure 1a)."""
    wf = Workflow("census")

    data = wf.add("data", SyntheticCensusSource(variant.data_config))
    rows = wf.add("rows", CsvScanner(data, fields=CENSUS_FIELDS, numeric_fields=NUMERIC_FIELDS))

    age = wf.add("age", FieldExtractor(rows, field="age"))
    edu = wf.add("edu", FieldExtractor(rows, field="education"))
    occ = wf.add("occ", FieldExtractor(rows, field="occupation"))
    cl = wf.add("cl", FieldExtractor(rows, field="capital_loss"))
    hours = wf.add("hours", FieldExtractor(rows, field="hours_per_week"))
    # Declared like in Figure 1a even when unused: the program slicer prunes it.
    wf.add("race", FieldExtractor(rows, field="race"))
    target = wf.add("target", LabelExtractor(rows, field="target"))

    age_bucket = wf.add("ageBucket", Bucketizer(age, bins=variant.age_bins))
    edu_x_occ = wf.add("eduXocc", InteractionFeature([edu, occ]))

    extractors: List[str] = [edu, age_bucket, edu_x_occ, cl]
    if variant.use_marital_status:
        ms = wf.add("ms", FieldExtractor(rows, field="marital_status"))
        extractors.append(ms)
    if variant.use_capital_gain:
        cg = wf.add("cg", FieldExtractor(rows, field="capital_gain"))
        extractors.append(cg)
    if variant.use_hours_interaction:
        hours_bucket = wf.add("hoursBucket", Bucketizer(hours, bins=5))
        age_x_hours = wf.add("ageXhours", InteractionFeature([age_bucket, hours_bucket]))
        extractors.append(age_x_hours)
    else:
        extractors.append(hours)

    income = wf.add("income", FeatureAssembler(extractors=extractors, label=target))

    learner_params: Dict[str, Any] = {}
    if variant.model_type in ("logistic_regression", "softmax"):
        learner_params = {
            "reg_param": variant.reg_param,
            "learning_rate": variant.learning_rate,
            "max_iter": variant.max_iter,
        }
    inc_pred = wf.add("incPred", Learner(income, model_type=variant.model_type, **learner_params))
    predictions = wf.add("predictions", Predictor(inc_pred, income))
    checked = wf.add("checked", Evaluator(predictions, metrics=tuple(variant.metrics)))

    wf.mark_output(predictions, checked)

    if variant.include_error_report:
        def count_test_errors(prediction_set):
            """Number of misclassified test examples (a custom result check)."""
            predicted, gold = prediction_set.split("test")
            return {"test_errors": float(sum(1 for p, g in zip(predicted, gold) if p != g))}

        error_report = wf.add("errorReport", Reducer(predictions, udf=count_test_errors, name="count_test_errors"))
        wf.mark_output(error_report)

    return wf


def build_dense_census_workflow(
    data_config: Optional[CensusConfig] = None,
    embed_dim: int = 192,
    passes: int = 6,
    reg_param: float = 0.1,
    max_iter: int = 30,
) -> Workflow:
    """A *linear* census pipeline dominated by dense batch featurization.

    source → scan → dense-embed → label → assemble → learn → predict →
    evaluate: every wave has width 1, so inter-node wavefront parallelism
    cannot help — which makes this the benchmark pipeline for intra-operator
    partitioning (the dense featurizer is NumPy batch work that releases the
    GIL, so partition chunks genuinely run in parallel on threads).
    """
    wf = Workflow("census_dense")
    data = wf.add("data", SyntheticCensusSource(data_config or CensusConfig()))
    rows = wf.add("rows", CsvScanner(data, fields=CENSUS_FIELDS, numeric_fields=NUMERIC_FIELDS))
    dense = wf.add(
        "dense",
        DenseFeaturizer(
            rows,
            fields=["age", "education_num", "capital_gain", "capital_loss", "hours_per_week"],
            embed_dim=embed_dim,
            passes=passes,
            out_features=6,
        ),
    )
    target = wf.add("target", LabelExtractor(rows, field="target"))
    examples = wf.add("examples", FeatureAssembler(extractors=[dense], label=target))
    model = wf.add(
        "model",
        Learner(examples, model_type="logistic_regression", reg_param=reg_param, max_iter=max_iter),
    )
    predictions = wf.add("predictions", Predictor(model, examples))
    checked = wf.add("checked", Evaluator(predictions, metrics=("accuracy", "f1")))
    wf.mark_output(predictions, checked)
    return wf


def census_workload(data_config: Optional[CensusConfig] = None, n_iterations: Optional[int] = None) -> WorkloadSpec:
    """The 10-iteration Census sequence used for Figure 2(b)-style experiments.

    ``n_iterations`` truncates the sequence (useful for quick tests).
    """
    base = CensusVariant(data_config=data_config or CensusConfig())
    spec = WorkloadSpec(name="census")

    def variant_builder(variant: CensusVariant):
        return lambda: build_census_workflow(variant)

    v1 = base
    spec.add("initial workflow: basic demographic features, LR(reg=0.1)", "initial", variant_builder(v1))

    v2 = replace(v1, use_marital_status=True)
    spec.add("add marital_status feature (swap extractor set)", "purple", variant_builder(v2))

    v3 = replace(v2, reg_param=0.01)
    spec.add("decrease regularization to 0.01", "orange", variant_builder(v3))

    v4 = replace(v3, metrics=("accuracy", "f1", "precision", "recall"))
    spec.add("report F1/precision/recall in addition to accuracy", "green", variant_builder(v4))

    v5 = replace(v4, use_hours_interaction=True)
    spec.add("bucketize hours-per-week and interact with age buckets", "purple", variant_builder(v5))

    v6 = replace(v5, model_type="naive_bayes")
    spec.add("switch model to naive Bayes", "orange", variant_builder(v6))

    v7 = replace(v6, model_type="logistic_regression", reg_param=0.001, learning_rate=0.8)
    spec.add("back to LR with reg=0.001 and higher learning rate", "orange", variant_builder(v7))

    v8 = replace(v7, include_error_report=True)
    spec.add("add custom error-count reducer to the outputs", "green", variant_builder(v8))

    v9 = replace(v8, use_capital_gain=True)
    spec.add("add capital_gain feature", "purple", variant_builder(v9))

    v10 = replace(v9, metrics=("accuracy", "f1"))
    spec.add("trim reported metrics to accuracy and F1", "green", variant_builder(v10))

    if n_iterations is not None:
        spec.iterations = spec.iterations[:n_iterations]
    return spec
