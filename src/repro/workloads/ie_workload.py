"""The information-extraction workload (the paper's Figure 2a application).

A structured-prediction pipeline over news articles: tokenize → token-level
feature extraction → structured-perceptron tagging → span evaluation and
mention formatting.  Compared with Census this workload is dominated by data
pre-processing (the "extensive data ETL" the paper mentions), which is exactly
why judicious materialization matters most here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.datagen.news import NewsConfig
from repro.dsl.ie_operators import (
    CharNGramExtractor,
    ContextWindowExtractor,
    GazetteerExtractor,
    MentionFormatter,
    SequenceFeatureAssembler,
    SequenceLearner,
    SequencePredictor,
    SpanEvaluator,
    SyntheticNewsSource,
    Tokenizer,
    TokenShapeExtractor,
)
from repro.dsl.workflow import Workflow
from repro.workloads.spec import IterationSpec, WorkloadSpec


@dataclass(frozen=True)
class IEVariant:
    """Iteration knobs for the IE workflow."""

    data_config: NewsConfig = NewsConfig()
    context_window: int = 1
    use_gazetteer: bool = False
    use_char_ngrams: bool = False
    char_ngram_n: int = 3
    epochs: int = 3
    averaged: bool = True
    eval_splits: Sequence[str] = ("test",)
    include_mention_list: bool = False


def build_ie_workflow(variant: IEVariant = IEVariant()) -> Workflow:
    """Construct one version of the person-mention extraction workflow."""
    wf = Workflow("information_extraction")

    docs = wf.add("docs", SyntheticNewsSource(variant.data_config))
    corpus = wf.add("corpus", Tokenizer(docs))

    shape = wf.add("shape", TokenShapeExtractor(corpus))
    context = wf.add("context", ContextWindowExtractor(corpus, window=variant.context_window))
    extractors: List[str] = [shape, context]
    if variant.use_gazetteer:
        gazetteer = wf.add("gazetteer", GazetteerExtractor(corpus))
        extractors.append(gazetteer)
    if variant.use_char_ngrams:
        char_ngrams = wf.add("charNgrams", CharNGramExtractor(corpus, n=variant.char_ngram_n))
        extractors.append(char_ngrams)

    examples = wf.add("examples", SequenceFeatureAssembler(extractors=extractors, corpus=corpus))
    tagger = wf.add("tagger", SequenceLearner(examples, epochs=variant.epochs, averaged=variant.averaged))
    predictions = wf.add("predictions", SequencePredictor(tagger, examples))
    evaluation = wf.add("evaluation", SpanEvaluator(predictions, splits=tuple(variant.eval_splits)))

    wf.mark_output(predictions, evaluation)

    if variant.include_mention_list:
        mentions = wf.add("mentions", MentionFormatter(predictions, corpus, split="test"))
        wf.mark_output(mentions)

    return wf


def ie_workload(data_config: Optional[NewsConfig] = None, n_iterations: Optional[int] = None) -> WorkloadSpec:
    """The 10-iteration IE sequence used for Figure 2(a)-style experiments."""
    base = IEVariant(data_config=data_config or NewsConfig())
    spec = WorkloadSpec(name="information_extraction")

    def variant_builder(variant: IEVariant):
        return lambda: build_ie_workflow(variant)

    v1 = base
    spec.add("initial pipeline: shape + context(1) features, 3-epoch tagger", "initial", variant_builder(v1))

    v2 = replace(v1, use_gazetteer=True)
    spec.add("add first/last-name gazetteer features", "purple", variant_builder(v2))

    v3 = replace(v2, epochs=6)
    spec.add("train the tagger for 6 epochs", "orange", variant_builder(v3))

    v4 = replace(v3, eval_splits=("train", "test"))
    spec.add("also report train-split span F1", "green", variant_builder(v4))

    v5 = replace(v4, context_window=2)
    spec.add("widen the context window to 2 tokens", "purple", variant_builder(v5))

    v6 = replace(v5, averaged=False)
    spec.add("disable perceptron weight averaging", "orange", variant_builder(v6))

    v7 = replace(v6, averaged=True, epochs=8)
    spec.add("re-enable averaging, 8 epochs", "orange", variant_builder(v7))

    v8 = replace(v7, include_mention_list=True)
    spec.add("emit the deduplicated mention list as an output", "green", variant_builder(v8))

    v9 = replace(v8, use_char_ngrams=True)
    spec.add("add character trigram features", "purple", variant_builder(v9))

    v10 = replace(v9, eval_splits=("test",))
    spec.add("report only test-split metrics", "green", variant_builder(v10))

    if n_iterations is not None:
        spec.iterations = spec.iterations[:n_iterations]
    return spec
