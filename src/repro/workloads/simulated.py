"""Cost-annotated (paper-scale) versions of the evaluation workloads.

The real workloads in this repository run in seconds on synthetic data; the
paper's run on a cluster over the full datasets and take minutes to hours per
iteration.  To reproduce the *shape* of Figure 2 at that scale, these builders
express the same iteration sequences as cost-annotated DAGs whose compute
costs and output sizes are set to paper-scale magnitudes (seconds / bytes).
The relative magnitudes are what matters: data pre-processing dominates the IE
task, the learner dominates ML iterations, evaluation is cheap, and artifact
sizes make materialize-everything noticeably more expensive than judicious
materialization.

Signatures are derived structurally: a node's signature hashes its name, its
per-node edit counter, and its parents' signatures — so editing one node
automatically invalidates its descendants, exactly like the real compiler.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import OptimizerError
from repro.execution.simulator import SimIteration, SimNode, sim_dag
from repro.graph.dag import Dag

MB = 1_000_000.0
GB = 1_000_000_000.0
KB = 1_000.0

def sim_defaults():
    """Storage throughput model used by the figure-reproduction benchmarks.

    Read from a warm distributed store at ~150 MB/s; write (serialize +
    persist) at ~60 MB/s.  Shared by benches and tests so numbers line up.
    """
    from repro.optimizer.cost_model import CostDefaults

    return CostDefaults(read_bandwidth=150e6, write_bandwidth=60e6, io_overhead=0.01)


class SimWorkloadBuilder:
    """Accumulates simulated iterations while tracking per-node edit versions."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._edit_versions: Dict[str, int] = {}
        self.iterations: List[SimIteration] = []

    def add_iteration(
        self,
        description: str,
        category: str,
        nodes: Sequence[SimNode],
        edges: Sequence[Tuple[str, str]],
        outputs: Sequence[str],
        edited: Sequence[str] = (),
    ) -> SimIteration:
        """Append one iteration; ``edited`` lists nodes whose operator changed.

        Newly appearing nodes are implicitly "edited" (they have never run);
        structural changes (new parents) propagate into descendants'
        signatures automatically.
        """
        for node in nodes:
            self._edit_versions.setdefault(node.name, 1)
        for name in edited:
            if name not in self._edit_versions:
                raise OptimizerError(f"edited node {name!r} does not exist in workload {self.name!r}")
            self._edit_versions[name] += 1

        dag = sim_dag(nodes, edges, name=self.name)
        signatures = self._propagate_signatures(dag)
        iteration = SimIteration(
            description=description,
            category=category,
            dag=dag,
            signatures=signatures,
            outputs=list(outputs),
        )
        self.iterations.append(iteration)
        return iteration

    def _propagate_signatures(self, dag: Dag) -> Dict[str, str]:
        signatures: Dict[str, str] = {}
        for name in dag.topological_order():
            parent_signatures = [signatures[parent] for parent in dag.parents(name)]
            payload = f"{name}|v{self._edit_versions[name]}|{'|'.join(parent_signatures)}"
            signatures[name] = hashlib.sha1(payload.encode("utf-8")).hexdigest()
        return signatures


# ---------------------------------------------------------------------------
# Census (Figure 2b) at paper scale
# ---------------------------------------------------------------------------
def census_sim_workload(scale: float = 1.0, n_iterations: Optional[int] = None) -> List[SimIteration]:
    """The 10-iteration Census sequence as a cost-annotated workload.

    ``scale`` multiplies every compute cost (1.0 ≈ paper-scale seconds).
    """

    def node(name: str, cost: float, size: float, category: str = "purple") -> SimNode:
        return SimNode(name=name, compute_cost=cost * scale, output_size=size, category=category)

    # Base pipeline nodes; iteration-specific nodes are added below.  The cost
    # profile mirrors the real task at census scale: ingest + scanning the full
    # dataset dominates, feature extraction is moderate, and training a simple
    # classifier is cheap — which is exactly why never-reuse systems pay an
    # order of magnitude more across ten iterations.
    def base_nodes() -> List[SimNode]:
        return [
            node("data", 350.0, 500 * MB, "source"),
            node("rows", 900.0, 1000 * MB),
            node("age", 40.0, 120 * MB),
            node("edu", 42.0, 130 * MB),
            node("occ", 44.0, 140 * MB),
            node("cl", 30.0, 90 * MB),
            node("hours", 32.0, 90 * MB),
            node("target", 20.0, 40 * MB),
            node("ageBucket", 24.0, 70 * MB),
            node("eduXocc", 80.0, 350 * MB),
            node("income", 60.0, 1200 * MB),
            node("incPred", 30.0, 5 * MB, "orange"),
            node("predictions", 10.0, 40 * MB, "orange"),
            node("checked", 4.0, 1 * KB, "green"),
        ]

    def base_edges() -> List[Tuple[str, str]]:
        return [
            ("data", "rows"),
            ("rows", "age"),
            ("rows", "edu"),
            ("rows", "occ"),
            ("rows", "cl"),
            ("rows", "hours"),
            ("rows", "target"),
            ("age", "ageBucket"),
            ("edu", "eduXocc"),
            ("occ", "eduXocc"),
            ("edu", "income"),
            ("ageBucket", "income"),
            ("eduXocc", "income"),
            ("cl", "income"),
            ("hours", "income"),
            ("target", "income"),
            ("income", "incPred"),
            ("incPred", "predictions"),
            ("income", "predictions"),
            ("predictions", "checked"),
        ]

    ms_node = node("ms", 40.0, 130 * MB)
    cg_node = node("cg", 38.0, 110 * MB)
    hours_bucket = node("hoursBucket", 20.0, 60 * MB)
    age_x_hours = node("ageXhours", 50.0, 250 * MB)
    error_report = node("errorReport", 3.0, 1 * KB, "green")

    builder = SimWorkloadBuilder("census_sim")
    outputs = ["predictions", "checked"]

    nodes, edges = base_nodes(), base_edges()
    builder.add_iteration("initial workflow", "initial", nodes, edges, outputs)

    # 2. purple: add marital_status feature.
    nodes = nodes + [ms_node]
    edges = edges + [("rows", "ms"), ("ms", "income")]
    builder.add_iteration("add marital_status feature", "purple", nodes, edges, outputs)

    # 3. orange: change regularization (edit the learner).
    builder.add_iteration("decrease regularization", "orange", nodes, edges, outputs, edited=["incPred"])

    # 4. green: add evaluation metrics (edit the evaluator).
    builder.add_iteration("add F1/precision/recall metrics", "green", nodes, edges, outputs, edited=["checked"])

    # 5. purple: bucketize hours and interact with age.
    nodes = nodes + [hours_bucket, age_x_hours]
    edges = edges + [("hours", "hoursBucket"), ("hoursBucket", "ageXhours"), ("ageBucket", "ageXhours"), ("ageXhours", "income")]
    builder.add_iteration("add hours x age interaction", "purple", nodes, edges, outputs)

    # 6-7. orange: model family / hyperparameter changes.
    builder.add_iteration("switch to naive Bayes", "orange", nodes, edges, outputs, edited=["incPred"])
    builder.add_iteration("back to LR, new hyperparameters", "orange", nodes, edges, outputs, edited=["incPred"])

    # 8. green: add an error-report reducer.
    nodes = nodes + [error_report]
    edges = edges + [("predictions", "errorReport")]
    outputs_with_report = outputs + ["errorReport"]
    builder.add_iteration("add error-count reducer", "green", nodes, edges, outputs_with_report)

    # 9. purple: add capital_gain feature.
    nodes = nodes + [cg_node]
    edges = edges + [("rows", "cg"), ("cg", "income")]
    builder.add_iteration("add capital_gain feature", "purple", nodes, edges, outputs_with_report)

    # 10. green: change reported metrics again.
    builder.add_iteration("trim reported metrics", "green", nodes, edges, outputs_with_report, edited=["checked"])

    iterations = builder.iterations
    if n_iterations is not None:
        iterations = iterations[:n_iterations]
    return iterations


# ---------------------------------------------------------------------------
# Information extraction (Figure 2a) at paper scale
# ---------------------------------------------------------------------------
def ie_sim_workload(scale: float = 1.0, n_iterations: Optional[int] = None) -> List[SimIteration]:
    """The 10-iteration IE sequence as a cost-annotated workload."""

    def node(name: str, cost: float, size: float, category: str = "purple") -> SimNode:
        return SimNode(name=name, compute_cost=cost * scale, output_size=size, category=category)

    def base_nodes() -> List[SimNode]:
        return [
            node("docs", 60.0, 2 * GB, "source"),
            node("corpus", 800.0, 3 * GB),
            node("shape", 350.0, 1.5 * GB),
            node("context", 400.0, 2 * GB),
            node("examples", 350.0, 4 * GB),
            node("tagger", 500.0, 20 * MB, "orange"),
            node("predictions", 200.0, 200 * MB, "orange"),
            node("evaluation", 25.0, 1 * KB, "green"),
        ]

    def base_edges() -> List[Tuple[str, str]]:
        return [
            ("docs", "corpus"),
            ("corpus", "shape"),
            ("corpus", "context"),
            ("shape", "examples"),
            ("context", "examples"),
            ("corpus", "examples"),
            ("examples", "tagger"),
            ("tagger", "predictions"),
            ("examples", "predictions"),
            ("predictions", "evaluation"),
        ]

    gazetteer = node("gazetteer", 280.0, 800 * MB)
    char_ngrams = node("charNgrams", 500.0, 2.5 * GB)
    mentions = node("mentions", 12.0, 5 * MB, "green")

    builder = SimWorkloadBuilder("ie_sim")
    outputs = ["predictions", "evaluation"]

    nodes, edges = base_nodes(), base_edges()
    builder.add_iteration("initial IE pipeline", "initial", nodes, edges, outputs)

    # 2. purple: add gazetteer features.
    nodes = nodes + [gazetteer]
    edges = edges + [("corpus", "gazetteer"), ("gazetteer", "examples")]
    builder.add_iteration("add gazetteer features", "purple", nodes, edges, outputs)

    # 3. orange: train longer.
    builder.add_iteration("train tagger for more epochs", "orange", nodes, edges, outputs, edited=["tagger"])

    # 4. green: evaluate on both splits.
    builder.add_iteration("also report train-split F1", "green", nodes, edges, outputs, edited=["evaluation"])

    # 5. purple: widen the context window (edit the context extractor).
    builder.add_iteration("widen context window", "purple", nodes, edges, outputs, edited=["context"])

    # 6-7. orange: perceptron variations.
    builder.add_iteration("disable weight averaging", "orange", nodes, edges, outputs, edited=["tagger"])
    builder.add_iteration("re-enable averaging, more epochs", "orange", nodes, edges, outputs, edited=["tagger"])

    # 8. green: add the mention-list output.
    nodes = nodes + [mentions]
    edges = edges + [("predictions", "mentions"), ("corpus", "mentions")]
    outputs_with_mentions = outputs + ["mentions"]
    builder.add_iteration("emit deduplicated mention list", "green", nodes, edges, outputs_with_mentions)

    # 9. purple: add character n-gram features.
    nodes = nodes + [char_ngrams]
    edges = edges + [("corpus", "charNgrams"), ("charNgrams", "examples")]
    builder.add_iteration("add character trigram features", "purple", nodes, edges, outputs_with_mentions)

    # 10. green: report only test metrics.
    builder.add_iteration("report only test metrics", "green", nodes, edges, outputs_with_mentions, edited=["evaluation"])

    iterations = builder.iterations
    if n_iterations is not None:
        iterations = iterations[:n_iterations]
    return iterations
