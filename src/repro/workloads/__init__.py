"""Evaluation workloads: the iteration sequences behind the paper's figures.

A *workload* is an ordered list of workflow iterations, each tagged with the
paper's change-category color (purple = data pre-processing, orange = ML,
green = post-processing).  Two families are provided:

* **Real workloads** (:mod:`census_workload`, :mod:`ie_workload`) build actual
  :class:`~repro.dsl.workflow.Workflow` objects over the synthetic datasets
  and are executed by :class:`~repro.core.session.HelixSession` — used by the
  examples, the integration tests, and the small-scale benchmark variants.
* **Simulated workloads** (:mod:`simulated`) are cost-annotated DAG versions
  of the same iteration sequences at paper scale, executed by
  :class:`~repro.execution.simulator.WorkflowSimulator` — used by the
  figure-reproduction benchmarks.
"""

from repro.workloads.spec import IterationSpec, WorkloadSpec
from repro.workloads.census_workload import CensusVariant, build_census_workflow, census_workload
from repro.workloads.ie_workload import IEVariant, build_ie_workflow, ie_workload
from repro.workloads.simulated import (
    SimWorkloadBuilder,
    census_sim_workload,
    ie_sim_workload,
    sim_defaults,
)

__all__ = [
    "IterationSpec",
    "WorkloadSpec",
    "CensusVariant",
    "build_census_workflow",
    "census_workload",
    "IEVariant",
    "build_ie_workflow",
    "ie_workload",
    "SimWorkloadBuilder",
    "census_sim_workload",
    "ie_sim_workload",
    "sim_defaults",
]
