"""Workload specification types."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from repro.dsl.workflow import Workflow


@dataclass(frozen=True)
class IterationSpec:
    """One human-in-the-loop iteration of a real workload.

    ``category`` uses the paper's color names: ``"purple"`` (data
    pre-processing change), ``"orange"`` (ML change), ``"green"``
    (post-processing change), or ``"initial"`` for the first version.
    """

    description: str
    category: str
    build: Callable[[], Workflow]


@dataclass
class WorkloadSpec:
    """An ordered sequence of iterations plus bookkeeping metadata."""

    name: str
    iterations: List[IterationSpec] = field(default_factory=list)

    def add(self, description: str, category: str, build: Callable[[], Workflow]) -> None:
        self.iterations.append(IterationSpec(description=description, category=category, build=build))

    def categories(self) -> List[str]:
        return [spec.category for spec in self.iterations]

    def __len__(self) -> int:
        return len(self.iterations)

    def __iter__(self):
        return iter(self.iterations)
