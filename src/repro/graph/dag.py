"""A small, explicit DAG implementation.

Helix compiles every workflow into a DAG of intermediate results.  The
optimizers (recomputation and materialization) and the execution engine all
operate on this structure, so it lives in its own dependency-free module.

Nodes are identified by unique string names.  Each node carries an arbitrary
``payload`` (an operator in compiled workflow DAGs, a cost record in simulated
workloads).  Edges point from a producer (parent) to a consumer (child):
``parent -> child`` means *child reads the parent's output*.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import CycleError, DuplicateNodeError, UnknownNodeError


class NodeState(enum.Enum):
    """Execution state assigned to a node by the recomputation optimizer.

    ``COMPUTE``
        Run the node's operator on its parents' outputs (pay the compute cost).
    ``LOAD``
        Read a previously materialized result from the artifact store (pay the
        load cost).  Only legal for nodes whose signature is materialized.
    ``PRUNE``
        Skip the node entirely; legal only when no computed descendant needs
        its output and it is not a workflow output.
    """

    COMPUTE = "compute"
    LOAD = "load"
    PRUNE = "prune"


class Dag:
    """Directed acyclic graph keyed by node name.

    Parameters
    ----------
    name:
        Optional label used in reports and visualizations.
    """

    def __init__(self, name: str = "dag") -> None:
        self.name = name
        self._payloads: Dict[str, Any] = {}
        self._parents: Dict[str, List[str]] = {}
        self._children: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, name: str, payload: Any = None) -> None:
        """Add a node; raises :class:`DuplicateNodeError` if it already exists."""
        if name in self._payloads:
            raise DuplicateNodeError(f"node {name!r} already exists in DAG {self.name!r}")
        self._payloads[name] = payload
        self._parents[name] = []
        self._children[name] = []

    def add_edge(self, parent: str, child: str) -> None:
        """Add a ``parent -> child`` edge.

        Duplicate edges are ignored.  Raises :class:`CycleError` if the edge
        would create a cycle and :class:`UnknownNodeError` if either endpoint
        is missing.
        """
        self._require(parent)
        self._require(child)
        if parent == child:
            raise CycleError(f"self-loop on node {parent!r}")
        if parent in self._parents[child]:
            return
        if self._reaches(child, parent):
            raise CycleError(f"edge {parent!r} -> {child!r} would create a cycle")
        self._parents[child].append(parent)
        self._children[parent].append(child)

    def set_payload(self, name: str, payload: Any) -> None:
        """Replace the payload attached to ``name``."""
        self._require(name)
        self._payloads[name] = payload

    def remove_node(self, name: str) -> None:
        """Remove ``name`` and every edge incident to it."""
        self._require(name)
        for parent in self._parents[name]:
            self._children[parent].remove(name)
        for child in self._children[name]:
            self._parents[child].remove(name)
        del self._parents[name]
        del self._children[name]
        del self._payloads[name]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._payloads

    def __len__(self) -> int:
        return len(self._payloads)

    def __iter__(self) -> Iterator[str]:
        return iter(self._payloads)

    def nodes(self) -> List[str]:
        """Node names in insertion order."""
        return list(self._payloads)

    def edges(self) -> List[Tuple[str, str]]:
        """All ``(parent, child)`` pairs."""
        return [(p, c) for c, ps in self._parents.items() for p in ps]

    def payload(self, name: str) -> Any:
        self._require(name)
        return self._payloads[name]

    def parents(self, name: str) -> List[str]:
        self._require(name)
        return list(self._parents[name])

    def children(self, name: str) -> List[str]:
        self._require(name)
        return list(self._children[name])

    def roots(self) -> List[str]:
        """Nodes with no parents (data sources)."""
        return [n for n in self._payloads if not self._parents[n]]

    def sinks(self) -> List[str]:
        """Nodes with no children (terminal results)."""
        return [n for n in self._payloads if not self._children[n]]

    def ancestors(self, name: str) -> Set[str]:
        """All transitive parents of ``name`` (excluding ``name`` itself)."""
        return self._closure(name, self._parents)

    def descendants(self, name: str) -> Set[str]:
        """All transitive children of ``name`` (excluding ``name`` itself)."""
        return self._closure(name, self._children)

    def topological_order(self) -> List[str]:
        """Kahn topological order, stable with respect to insertion order."""
        indegree = {n: len(ps) for n, ps in self._parents.items()}
        ready = deque(n for n in self._payloads if indegree[n] == 0)
        order: List[str] = []
        while ready:
            node = ready.popleft()
            order.append(node)
            for child in self._children[node]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(order) != len(self._payloads):
            raise CycleError(f"DAG {self.name!r} contains a cycle")
        return order

    def subgraph(self, keep: Iterable[str], name: Optional[str] = None) -> "Dag":
        """Return the induced subgraph on ``keep`` (payloads are shared)."""
        keep_set = set(keep)
        missing = keep_set - set(self._payloads)
        if missing:
            raise UnknownNodeError(f"unknown nodes in subgraph request: {sorted(missing)}")
        sub = Dag(name or f"{self.name}.sub")
        for node in self._payloads:
            if node in keep_set:
                sub.add_node(node, self._payloads[node])
        for child, parents in self._parents.items():
            if child not in keep_set:
                continue
            for parent in parents:
                if parent in keep_set:
                    sub.add_edge(parent, child)
        return sub

    def map_payloads(self, fn: Callable[[str, Any], Any]) -> "Dag":
        """Return a structural copy with each payload replaced by ``fn(name, payload)``."""
        out = Dag(self.name)
        for node in self._payloads:
            out.add_node(node, fn(node, self._payloads[node]))
        for parent, child in self.edges():
            out.add_edge(parent, child)
        return out

    def copy(self) -> "Dag":
        """Structural copy sharing payload references."""
        return self.map_payloads(lambda _name, payload: payload)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require(self, name: str) -> None:
        if name not in self._payloads:
            raise UnknownNodeError(f"unknown node {name!r} in DAG {self.name!r}")

    def _reaches(self, start: str, target: str) -> bool:
        """True if ``target`` is reachable from ``start`` following child edges."""
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            if node == target:
                return True
            for child in self._children[node]:
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return False

    def _closure(self, name: str, adjacency: Dict[str, List[str]]) -> Set[str]:
        self._require(name)
        seen: Set[str] = set()
        stack = list(adjacency[name])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency[node])
        return seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dag(name={self.name!r}, nodes={len(self)}, edges={len(self.edges())})"
