"""Directed-acyclic-graph substrate used by the compiler and optimizers.

The central class is :class:`~repro.graph.dag.Dag`, a minimal, dependency-free
DAG keyed by string node names with an arbitrary payload per node.  The
compiler produces a ``Dag`` whose payloads are operators; the optimizers
consume a ``Dag`` whose payloads are cost annotations.
"""

from repro.graph.dag import Dag, NodeState
from repro.graph.visualize import to_ascii, to_dot

__all__ = ["Dag", "NodeState", "to_ascii", "to_dot"]
