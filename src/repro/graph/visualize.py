"""Textual DAG rendering: ASCII trees for terminals and DOT for Graphviz.

The Helix demo ships a browser-based DAG visualizer; this reproduction keeps
the data model and renders execution plans as text.  Both renderers accept an
optional ``annotations`` mapping from node name to a short string (for example
the node state chosen by the optimizer, or runtimes) which is appended to the
node label exactly like the hover tooltips in the paper's UI.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.graph.dag import Dag


def to_ascii(dag: Dag, annotations: Optional[Mapping[str, str]] = None) -> str:
    """Render ``dag`` as an indented ASCII forest rooted at the source nodes.

    Nodes with several parents appear once fully expanded and afterwards as
    ``name (shown above)`` references, so the output stays linear in the DAG
    size even for diamond-heavy graphs.
    """
    annotations = dict(annotations or {})
    lines = [f"DAG: {dag.name}  ({len(dag)} nodes, {len(dag.edges())} edges)"]
    expanded: set = set()

    def label(node: str) -> str:
        note = annotations.get(node)
        return f"{node} [{note}]" if note else node

    def walk(node: str, depth: int) -> None:
        prefix = "  " * depth + ("- " if depth else "")
        if node in expanded:
            lines.append(f"{prefix}{label(node)} (shown above)")
            return
        expanded.add(node)
        lines.append(f"{prefix}{label(node)}")
        for child in dag.children(node):
            walk(child, depth + 1)

    for root in dag.roots():
        walk(root, 0)
    # Isolated components whose roots were already covered cannot happen, but
    # a DAG with zero nodes still renders its header.
    return "\n".join(lines)


def to_dot(
    dag: Dag,
    annotations: Optional[Mapping[str, str]] = None,
    colors: Optional[Mapping[str, str]] = None,
) -> str:
    """Render ``dag`` in Graphviz DOT format.

    Parameters
    ----------
    annotations:
        Optional second label line per node (e.g. ``"load, 1.2s"``).
    colors:
        Optional fill color per node, mirroring the paper's purple
        (pre-processing) / orange (ML) / green (post-processing) convention.
    """
    annotations = dict(annotations or {})
    colors = dict(colors or {})
    lines = [f'digraph "{dag.name}" {{', "  rankdir=TB;", '  node [shape=box, style="rounded,filled", fillcolor=white];']
    for node in dag.nodes():
        note = annotations.get(node)
        text = node if not note else f"{node}\\n{note}"
        attrs = [f'label="{text}"']
        if node in colors:
            attrs.append(f'fillcolor="{colors[node]}"')
        lines.append(f'  "{node}" [{", ".join(attrs)}];')
    for parent, child in dag.edges():
        lines.append(f'  "{parent}" -> "{child}";')
    lines.append("}")
    return "\n".join(lines)


def plan_annotations(states: Mapping[str, object], runtimes: Optional[Mapping[str, float]] = None) -> Dict[str, str]:
    """Build the annotation map for a physical plan.

    ``states`` maps node name to :class:`~repro.graph.dag.NodeState` (or any
    object with a ``value``/string form); ``runtimes`` optionally maps node
    name to seconds.
    """
    runtimes = dict(runtimes or {})
    notes: Dict[str, str] = {}
    for node, state in states.items():
        text = getattr(state, "value", str(state))
        if node in runtimes:
            text = f"{text}, {runtimes[node]:.3f}s"
        notes[node] = text
    return notes
