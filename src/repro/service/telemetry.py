"""Per-tenant service telemetry: latency, cache hits, reuse fractions.

Every finished request folds into one :class:`ServiceTelemetry` instance,
which the service exposes for the CLI and the benchmark: per-tenant p50/p95
latency, the fraction of plan nodes served from the shared cache, and —
joined with the cache's own counters — the cross-tenant hit rate that is the
whole point of a shared store.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.bench.reporting import format_table
from repro.execution.stats import IterationReport
from repro.graph.dag import NodeState
from repro.service.dispatcher import RequestTicket


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in [0, 1]); 0.0 for no samples."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class TenantTelemetry:
    """Accumulated measurements for one tenant."""

    tenant: str
    runs: int = 0
    errors: int = 0
    latencies: List[float] = field(default_factory=list)
    queue_latencies: List[float] = field(default_factory=list)
    reuse_fractions: List[float] = field(default_factory=list)
    loaded_nodes: int = 0
    computed_nodes: int = 0
    pruned_nodes: int = 0
    compute_seconds: float = 0.0
    load_seconds: float = 0.0
    total_runtime: float = 0.0

    def cache_hit_rate(self) -> float:
        """Loads over loads + computes: how often the cache spared a recompute."""
        executed = self.loaded_nodes + self.computed_nodes
        return self.loaded_nodes / executed if executed else 0.0

    def mean_reuse_fraction(self) -> float:
        if not self.reuse_fractions:
            return 0.0
        return sum(self.reuse_fractions) / len(self.reuse_fractions)

    def row(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "runs": self.runs,
            "errors": self.errors,
            "p50_s": round(percentile(self.latencies, 0.50), 3),
            "p95_s": round(percentile(self.latencies, 0.95), 3),
            "queue_p95_s": round(percentile(self.queue_latencies, 0.95), 3),
            "hit_rate": round(self.cache_hit_rate(), 3),
            "reuse": round(self.mean_reuse_fraction(), 3),
            "compute_s": round(self.compute_seconds, 3),
            "load_s": round(self.load_seconds, 3),
        }


class ServiceTelemetry:
    """Thread-safe aggregation of every request the service completed."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tenants: Dict[str, TenantTelemetry] = {}
        self._first_submitted_at: Optional[float] = None
        self._last_finished_at: Optional[float] = None

    def _tenant(self, tenant: str) -> TenantTelemetry:
        if tenant not in self._tenants:
            self._tenants[tenant] = TenantTelemetry(tenant=tenant)
        return self._tenants[tenant]

    # ------------------------------------------------------------------
    def record_run(self, ticket: RequestTicket, report: IterationReport) -> None:
        with self._lock:
            stats = self._tenant(ticket.request.tenant)
            stats.runs += 1
            stats.latencies.append(ticket.total_latency)
            stats.queue_latencies.append(ticket.queue_latency)
            stats.reuse_fractions.append(report.reuse_fraction())
            stats.loaded_nodes += report.n_in_state(NodeState.LOAD)
            stats.computed_nodes += report.n_in_state(NodeState.COMPUTE)
            stats.pruned_nodes += report.n_in_state(NodeState.PRUNE)
            stats.compute_seconds += report.compute_time()
            stats.load_seconds += report.load_time()
            stats.total_runtime += report.total_runtime
            self._note_window(ticket)

    def record_error(self, ticket: RequestTicket) -> None:
        with self._lock:
            stats = self._tenant(ticket.request.tenant)
            stats.errors += 1
            stats.latencies.append(ticket.total_latency)
            self._note_window(ticket)

    def _note_window(self, ticket: RequestTicket) -> None:
        if self._first_submitted_at is None or ticket.submitted_at < self._first_submitted_at:
            self._first_submitted_at = ticket.submitted_at
        if ticket.finished_at is not None and (
            self._last_finished_at is None or ticket.finished_at > self._last_finished_at
        ):
            self._last_finished_at = ticket.finished_at

    # ------------------------------------------------------------------
    def tenants(self) -> List[TenantTelemetry]:
        with self._lock:
            return [self._tenants[tenant] for tenant in sorted(self._tenants)]

    def total_requests(self) -> int:
        with self._lock:
            return sum(stats.runs + stats.errors for stats in self._tenants.values())

    def window_seconds(self) -> float:
        """First submission to last completion — the throughput denominator."""
        with self._lock:
            if self._first_submitted_at is None or self._last_finished_at is None:
                return 0.0
            return max(0.0, self._last_finished_at - self._first_submitted_at)

    def throughput(self) -> float:
        """Completed requests per second over the observed window."""
        window = self.window_seconds()
        return self.total_requests() / window if window > 0 else 0.0

    def latencies(self) -> List[float]:
        with self._lock:
            return [value for stats in self._tenants.values() for value in stats.latencies]

    def cache_hit_rate(self) -> float:
        tenants = self.tenants()
        loaded = sum(stats.loaded_nodes for stats in tenants)
        executed = loaded + sum(stats.computed_nodes for stats in tenants)
        return loaded / executed if executed else 0.0

    def compute_seconds(self) -> float:
        return sum(stats.compute_seconds for stats in self.tenants())

    # ------------------------------------------------------------------
    def snapshot(self, cache_stats: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Aggregate + per-tenant numbers, optionally joined with cache counters."""
        all_latencies = self.latencies()
        summary: Dict[str, Any] = {
            "requests": self.total_requests(),
            "window_s": round(self.window_seconds(), 3),
            "throughput_rps": round(self.throughput(), 3),
            "p50_latency_s": round(percentile(all_latencies, 0.50), 3),
            "p95_latency_s": round(percentile(all_latencies, 0.95), 3),
            "cache_hit_rate": round(self.cache_hit_rate(), 3),
            "compute_seconds": round(self.compute_seconds(), 3),
            "tenants": {stats.tenant: stats.row() for stats in self.tenants()},
        }
        if cache_stats is not None:
            hits = cache_stats.get("hits", 0)
            summary["cache"] = dict(cache_stats)
            summary["cross_tenant_hit_fraction"] = round(
                cache_stats.get("cross_tenant_hits", 0) / hits if hits else 0.0, 3
            )
        return summary

    def render(self) -> str:
        """The per-tenant table the `repro serve` command prints."""
        rows = [stats.row() for stats in self.tenants()]
        if not rows:
            return "(no completed requests)"
        return format_table(rows)
