"""Per-tenant service telemetry as a read-view over the metrics registry.

Every finished request folds into labeled series in a
:class:`~repro.obs.registry.MetricsRegistry` (``repro_requests_total``,
``repro_request_seconds``, ...); :class:`ServiceTelemetry` itself keeps no
second bookkeeping path.  Per-tenant p50/p95 latency, cache hit rate, and
reuse fractions are all derived from the registry snapshot, so the numbers
`repro serve` prints, ``repro metrics`` exports, and the benchmark reads are
one and the same.  Latency distributions live in bounded histograms (fixed
buckets + a small reservoir), so memory stays constant no matter how many
requests a tenant submits — the old per-tenant ``latencies`` list grew
without bound and re-sorted on every percentile call.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.bench.reporting import format_table
from repro.execution.stats import IterationReport
from repro.graph.dag import NodeState
from repro.obs.export import quantile_from_series
from repro.obs.registry import (
    FRACTION_BUCKETS,
    LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
)
from repro.service.dispatcher import RequestTicket


def percentile(values: List[float], fraction: float) -> float:
    """Bounded-memory percentile estimate (``fraction`` in [0, 1]).

    Routes through the :class:`~repro.obs.registry.Histogram` estimator
    instead of sorting the full sample list: the estimate interpolates
    inside the ``LATENCY_BUCKETS`` bucket containing the nearest-rank
    target and is clamped to the observed ``[min, max]``, so it is always
    within one bucket width of the exact nearest-rank percentile (and exact
    for empty/single-sample inputs and at the extremes).  Returns 0.0 for
    no samples.
    """
    if not values:
        return 0.0
    hist = Histogram("percentile", (), buckets=LATENCY_BUCKETS)
    for value in values:
        hist.observe(value)
    return hist.quantile(fraction)


@dataclass
class TenantTelemetry:
    """Read-view of one tenant's accumulated series (built per snapshot)."""

    tenant: str
    runs: int = 0
    errors: int = 0
    loaded_nodes: int = 0
    computed_nodes: int = 0
    pruned_nodes: int = 0
    compute_seconds: float = 0.0
    load_seconds: float = 0.0
    total_runtime: float = 0.0
    reuse_sum: float = 0.0
    reuse_count: int = 0
    #: Raw histogram series dicts (snapshot form) quantiles derive from.
    latency_series: Optional[Dict[str, Any]] = field(default=None, repr=False)
    queue_series: Optional[Dict[str, Any]] = field(default=None, repr=False)

    def cache_hit_rate(self) -> float:
        """Loads over loads + computes: how often the cache spared a recompute."""
        executed = self.loaded_nodes + self.computed_nodes
        return self.loaded_nodes / executed if executed else 0.0

    def mean_reuse_fraction(self) -> float:
        if not self.reuse_count:
            return 0.0
        return self.reuse_sum / self.reuse_count

    def latency_quantile(self, q: float) -> float:
        if self.latency_series is None:
            return 0.0
        return quantile_from_series(self.latency_series, q)

    def queue_quantile(self, q: float) -> float:
        if self.queue_series is None:
            return 0.0
        return quantile_from_series(self.queue_series, q)

    def row(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "runs": self.runs,
            "errors": self.errors,
            "p50_s": round(self.latency_quantile(0.50), 3),
            "p95_s": round(self.latency_quantile(0.95), 3),
            "queue_p95_s": round(self.queue_quantile(0.95), 3),
            "hit_rate": round(self.cache_hit_rate(), 3),
            "reuse": round(self.mean_reuse_fraction(), 3),
            "compute_s": round(self.compute_seconds, 3),
            "load_s": round(self.load_seconds, 3),
        }


class ServiceTelemetry:
    """Folds finished requests into registry series; reads them back per tenant.

    ``registry`` is normally the service's own
    :class:`~repro.obs.registry.MetricsRegistry` (so request series sit next
    to scheduler/cache/storage series in one export); ``None`` creates a
    private registry, which keeps standalone use and tests isolated.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._first_submitted_at: Optional[float] = None
        self._last_finished_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Recording (write path: straight into registry instruments)
    # ------------------------------------------------------------------
    def record_run(self, ticket: RequestTicket, report: IterationReport) -> None:
        tenant = ticket.request.tenant
        reg = self.registry
        reg.counter(
            "repro_requests_total", help="Completed service requests by outcome.",
            tenant=tenant, outcome="ok",
        ).inc()
        reg.histogram(
            "repro_request_seconds", help="End-to-end request latency.",
            tenant=tenant,
        ).observe(ticket.total_latency)
        reg.histogram(
            "repro_request_queue_seconds", help="Time spent waiting for a worker.",
            tenant=tenant,
        ).observe(ticket.queue_latency)
        reg.histogram(
            "repro_request_reuse_fraction", help="Per-run fraction of plan nodes reused.",
            buckets=FRACTION_BUCKETS, tenant=tenant,
        ).observe(report.reuse_fraction())
        nodes_help = "Plan nodes by final state across a tenant's runs."
        for state, label in (
            (NodeState.LOAD, "load"),
            (NodeState.COMPUTE, "compute"),
            (NodeState.PRUNE, "prune"),
        ):
            n = report.n_in_state(state)
            if n:
                reg.counter(
                    "repro_request_nodes_total", help=nodes_help,
                    tenant=tenant, state=label,
                ).inc(n)
        reg.counter(
            "repro_request_compute_seconds_total",
            help="Cumulative measured compute seconds.", tenant=tenant,
        ).inc(report.compute_time())
        reg.counter(
            "repro_request_load_seconds_total",
            help="Cumulative measured artifact-load seconds.", tenant=tenant,
        ).inc(report.load_time())
        reg.counter(
            "repro_request_runtime_seconds_total",
            help="Cumulative per-node runtime seconds.", tenant=tenant,
        ).inc(report.total_runtime)
        self._note_window(ticket)

    def record_error(self, ticket: RequestTicket) -> None:
        tenant = ticket.request.tenant
        self.registry.counter(
            "repro_requests_total", help="Completed service requests by outcome.",
            tenant=tenant, outcome="error",
        ).inc()
        self.registry.histogram(
            "repro_request_seconds", help="End-to-end request latency.",
            tenant=tenant,
        ).observe(ticket.total_latency)
        self._note_window(ticket)

    def _note_window(self, ticket: RequestTicket) -> None:
        with self._lock:
            if self._first_submitted_at is None or ticket.submitted_at < self._first_submitted_at:
                self._first_submitted_at = ticket.submitted_at
            if ticket.finished_at is not None and (
                self._last_finished_at is None or ticket.finished_at > self._last_finished_at
            ):
                self._last_finished_at = ticket.finished_at

    # ------------------------------------------------------------------
    # Read views (all derived from one registry snapshot)
    # ------------------------------------------------------------------
    _REQUEST_SERIES = frozenset({
        "repro_requests_total",
        "repro_request_seconds",
        "repro_request_queue_seconds",
        "repro_request_reuse_fraction",
        "repro_request_nodes_total",
        "repro_request_compute_seconds_total",
        "repro_request_load_seconds_total",
        "repro_request_runtime_seconds_total",
    })

    def _views(self) -> Dict[str, TenantTelemetry]:
        views: Dict[str, TenantTelemetry] = {}
        for series in self.registry.snapshot():
            name = series["name"]
            labels = series["labels"]
            # The registry is shared with scheduler/cache/storage series;
            # only the request series define which tenants have rows here.
            if name not in self._REQUEST_SERIES:
                continue
            tenant = labels.get("tenant")  # type: ignore[union-attr]
            if tenant is None:
                continue
            if tenant not in views:
                views[tenant] = TenantTelemetry(tenant=tenant)
            stats = views[tenant]
            if name == "repro_requests_total":
                if labels.get("outcome") == "error":
                    stats.errors += int(series["value"])  # type: ignore[arg-type]
                elif labels.get("outcome") == "ok":
                    stats.runs += int(series["value"])  # type: ignore[arg-type]
            elif name == "repro_request_seconds":
                stats.latency_series = series
            elif name == "repro_request_queue_seconds":
                stats.queue_series = series
            elif name == "repro_request_reuse_fraction":
                stats.reuse_sum = float(series["sum"])  # type: ignore[arg-type]
                stats.reuse_count = int(series["count"])  # type: ignore[arg-type]
            elif name == "repro_request_nodes_total":
                count = int(series["value"])  # type: ignore[arg-type]
                state = labels.get("state")
                if state == "load":
                    stats.loaded_nodes += count
                elif state == "compute":
                    stats.computed_nodes += count
                elif state == "prune":
                    stats.pruned_nodes += count
            elif name == "repro_request_compute_seconds_total":
                stats.compute_seconds = float(series["value"])  # type: ignore[arg-type]
            elif name == "repro_request_load_seconds_total":
                stats.load_seconds = float(series["value"])  # type: ignore[arg-type]
            elif name == "repro_request_runtime_seconds_total":
                stats.total_runtime = float(series["value"])  # type: ignore[arg-type]
        return views

    def tenants(self) -> List[TenantTelemetry]:
        views = self._views()
        return [views[tenant] for tenant in sorted(views)]

    def total_requests(self) -> int:
        return sum(stats.runs + stats.errors for stats in self.tenants())

    def window_seconds(self) -> float:
        """First submission to last completion — the throughput denominator."""
        with self._lock:
            if self._first_submitted_at is None or self._last_finished_at is None:
                return 0.0
            return max(0.0, self._last_finished_at - self._first_submitted_at)

    def throughput(self) -> float:
        """Completed requests per second over the observed window."""
        window = self.window_seconds()
        return self.total_requests() / window if window > 0 else 0.0

    def cache_hit_rate(self) -> float:
        tenants = self.tenants()
        loaded = sum(stats.loaded_nodes for stats in tenants)
        executed = loaded + sum(stats.computed_nodes for stats in tenants)
        return loaded / executed if executed else 0.0

    def compute_seconds(self) -> float:
        return sum(stats.compute_seconds for stats in self.tenants())

    # ------------------------------------------------------------------
    def snapshot(self, cache_stats: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Aggregate + per-tenant numbers, optionally joined with cache counters."""
        tenants = self.tenants()
        # Aggregate latency quantiles merge every tenant's bounded series —
        # same estimator, no raw sample list anywhere.
        merged: Optional[Histogram] = None
        for stats in tenants:
            if stats.latency_series is None:
                continue
            hist = Histogram("latency", (), buckets=[b for b, _ in stats.latency_series["buckets"]])
            hist.bucket_counts = [c for _, c in stats.latency_series["buckets"]] + [
                stats.latency_series["overflow"]
            ]
            hist.sum = float(stats.latency_series["sum"])
            hist.count = int(stats.latency_series["count"])
            hist.min = float(stats.latency_series["min"])
            hist.max = float(stats.latency_series["max"])
            merged = hist if merged is None else merged.merge(hist)
        summary: Dict[str, Any] = {
            "requests": sum(stats.runs + stats.errors for stats in tenants),
            "window_s": round(self.window_seconds(), 3),
            "throughput_rps": round(self.throughput(), 3),
            "p50_latency_s": round(merged.quantile(0.50), 3) if merged else 0.0,
            "p95_latency_s": round(merged.quantile(0.95), 3) if merged else 0.0,
            "cache_hit_rate": round(self.cache_hit_rate(), 3),
            "compute_seconds": round(sum(s.compute_seconds for s in tenants), 3),
            "tenants": {stats.tenant: stats.row() for stats in tenants},
        }
        if cache_stats is not None:
            hits = cache_stats.get("hits", 0)
            summary["cache"] = dict(cache_stats)
            summary["cross_tenant_hit_fraction"] = round(
                cache_stats.get("cross_tenant_hits", 0) / hits if hits else 0.0, 3
            )
        return summary

    def render(self) -> str:
        """The per-tenant table the `repro serve` command prints."""
        rows = [stats.row() for stats in self.tenants()]
        if not rows:
            return "(no completed requests)"
        return format_table(rows)
