"""Fair request dispatch onto a bounded pool of session workers.

The service accepts run requests from many tenants concurrently; this module
decides *who runs next*.  Two properties matter:

* **Per-tenant ordering** — a tenant's requests are iterations of one
  evolving workflow, so they must execute in submission order, one at a
  time (a :class:`~repro.core.session.HelixSession` is stateful and not
  reentrant).  The dispatcher keeps one FIFO queue per tenant and marks a
  tenant busy while any of its requests is executing.
* **Fairness** — a tenant that dumps 100 requests must not starve one that
  submits a single run.  Workers pick the next tenant round-robin over the
  set of runnable tenants (queued work, not currently executing), so each
  tenant gets one slot per cycle regardless of backlog depth.

Workers are plain threads: the execute callback runs a full Helix iteration
(compile → plan → wavefront execute), which releases the GIL during artifact
I/O and lets distinct tenants' runs overlap loads with computes.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.dsl.workflow import Workflow
from repro.errors import HelixError
from repro.obs.events import correlation_scope, events_for
from repro.obs.registry import MetricsRegistry, get_registry


class ServiceError(HelixError):
    """Raised for service-layer misuse (submit after close, bad request)."""


@dataclass
class RunRequest:
    """One tenant's ask: run this workflow version.

    ``build`` defers workflow construction to the worker thread (useful when
    construction itself is costly); exactly one of ``workflow`` / ``build``
    must be provided.
    """

    tenant: str
    workflow: Optional[Workflow] = None
    build: Optional[Callable[[], Workflow]] = None
    description: str = ""
    change_category: str = ""

    def materialize_workflow(self) -> Workflow:
        if self.workflow is not None:
            return self.workflow
        if self.build is not None:
            return self.build()
        raise ServiceError(f"request from tenant {self.tenant!r} has neither workflow nor build")


class RequestTicket:
    """Handle returned by ``submit``: await completion, read timing and result."""

    def __init__(self, request: RunRequest, correlation_id: str = "") -> None:
        self.request = request
        self.correlation_id = correlation_id
        self.submitted_at = time.perf_counter()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._done = threading.Event()

    # -- lifecycle (dispatcher-internal) -------------------------------
    def _mark_started(self) -> None:
        self.started_at = time.perf_counter()

    def _mark_finished(self) -> None:
        self.finished_at = time.perf_counter()
        self._done.set()

    # -- caller surface -------------------------------------------------
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    def value(self, timeout: Optional[float] = None) -> Any:
        """Block for the result; re-raise the worker-side failure if any."""
        if not self.wait(timeout):
            raise ServiceError(
                f"request for tenant {self.request.tenant!r} not finished within {timeout}s"
            )
        if self.error is not None:
            raise self.error
        return self.result

    @property
    def queue_latency(self) -> float:
        """Seconds spent waiting for a worker (0.0 until started)."""
        if self.started_at is None:
            return 0.0
        return self.started_at - self.submitted_at

    @property
    def total_latency(self) -> float:
        """Submission-to-completion seconds (0.0 until finished)."""
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.submitted_at


class FairDispatcher:
    """Round-robin-fair dispatcher over per-tenant FIFO queues.

    Parameters
    ----------
    execute:
        Callback that runs one ticket to completion and returns its result;
        exceptions are captured onto the ticket.
    n_workers:
        Bound on concurrently executing requests (and, transitively, on
        concurrently active sessions).
    on_complete:
        Optional callback invoked after a ticket is finished (result or
        error set, end-to-end latency known) — the service records
        telemetry here.  Its own exceptions are swallowed so bookkeeping
        can never wedge a worker.
    metrics:
        Destination :class:`~repro.obs.registry.MetricsRegistry` for queue
        depth gauges, busy-worker occupancy, and queue-wait latency;
        defaults to the process registry.
    """

    def __init__(
        self,
        execute: Callable[[RequestTicket], Any],
        n_workers: int = 2,
        on_complete: Optional[Callable[[RequestTicket], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if n_workers < 1:
            raise ServiceError(f"n_workers must be >= 1, got {n_workers}")
        self._execute = execute
        self._on_complete = on_complete
        self.metrics = metrics if metrics is not None else get_registry()
        self._busy_gauge = self.metrics.gauge(
            "repro_dispatcher_busy_workers",
            help="Workers currently executing a request.",
        )
        self._queues: Dict[str, Deque[RequestTicket]] = {}
        self._tenant_order: List[str] = []
        self._busy: set = set()
        self._rr_index = 0
        self._submitted = 0
        self._closing = False
        self._condition = threading.Condition()
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"helix-service-worker-{index}", daemon=True)
            for index in range(n_workers)
        ]
        for worker in self._workers:
            worker.start()

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    # -- liveness (the /healthz and /readyz checks) ---------------------
    def health(self) -> Tuple[bool, str]:
        """Liveness: every worker thread must still be running."""
        alive = sum(1 for worker in self._workers if worker.is_alive())
        if self._closing:
            return False, f"closing ({alive}/{len(self._workers)} workers alive)"
        ok = alive == len(self._workers)
        return ok, f"{alive}/{len(self._workers)} workers alive"

    def accepting(self) -> Tuple[bool, str]:
        """Readiness: is ``submit`` currently accepted?"""
        if self._closing:
            return False, "closed to new requests"
        return True, "accepting requests"

    # ------------------------------------------------------------------
    def submit(self, request: RunRequest) -> RequestTicket:
        events = events_for(self.metrics)
        with self._condition:
            if self._closing:
                events.emit(
                    "service_reject", tenant=request.tenant, reason="dispatcher closed",
                )
                raise ServiceError("dispatcher is closed")
            # The correlation ID minted here follows the request through
            # every thread that touches it: worker, scheduler, materializer.
            self._submitted += 1
            cid = f"req-{self._submitted:06d}-{request.tenant}"
            ticket = RequestTicket(request, correlation_id=cid)
            if request.tenant not in self._queues:
                self._queues[request.tenant] = deque()
                self._tenant_order.append(request.tenant)
            self._queues[request.tenant].append(ticket)
            depth = len(self._queues[request.tenant])
            self._condition.notify()
        self.metrics.counter(
            "repro_dispatcher_requests_total",
            help="Requests accepted by the dispatcher.",
            tenant=request.tenant,
        ).inc()
        self._queue_gauge(request.tenant).set(depth)
        events.emit("service_admit", tenant=request.tenant, cid=cid)
        events.emit("dispatch_enqueue", tenant=request.tenant, cid=cid, depth=depth)
        return ticket

    def _queue_gauge(self, tenant: str):
        return self.metrics.gauge(
            "repro_dispatcher_queue_depth",
            help="Requests waiting in a tenant's FIFO queue.",
            tenant=tenant,
        )

    def pending_counts(self) -> Dict[str, int]:
        with self._condition:
            return {tenant: len(queue) for tenant, queue in self._queues.items() if queue}

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every queued request has finished executing."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._condition:
            while any(self._queues.values()) or self._busy:
                remaining = None if deadline is None else deadline - time.perf_counter()
                if remaining is not None and remaining <= 0:
                    return False
                self._condition.wait(remaining)
        return True

    def close(self, wait: bool = True) -> None:
        """Stop accepting work.

        ``wait=True`` drains everything already queued first.  ``wait=False``
        is the abort path: workers stop after their in-flight request, and
        every still-queued ticket is completed with a :class:`ServiceError`
        so no caller blocks forever on an abandoned request.
        """
        if wait:
            self.drain()
        abandoned: List[RequestTicket] = []
        with self._condition:
            self._closing = True
            if not wait:
                for queue_ in self._queues.values():
                    abandoned.extend(queue_)
                    queue_.clear()
            self._condition.notify_all()
        for ticket in abandoned:
            ticket.error = ServiceError("dispatcher closed before the request ran")
            ticket._mark_finished()
        for worker in self._workers:
            worker.join()

    # ------------------------------------------------------------------
    def _next_ticket(self) -> Optional[RequestTicket]:
        """Pop the next runnable tenant's head request (caller holds the lock)."""
        n_tenants = len(self._tenant_order)
        for offset in range(n_tenants):
            tenant = self._tenant_order[(self._rr_index + offset) % n_tenants]
            if tenant in self._busy or not self._queues[tenant]:
                continue
            # Advance the cursor past the chosen tenant so the next pick
            # starts from its successor: one slot per tenant per cycle.
            self._rr_index = (self._rr_index + offset + 1) % n_tenants
            self._busy.add(tenant)
            ticket = self._queues[tenant].popleft()
            self._queue_gauge(tenant).set(len(self._queues[tenant]))
            self._busy_gauge.set(len(self._busy))
            return ticket
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._condition:
                ticket = None
                # Checking _closing before popping means an abort
                # (close(wait=False)) stops workers after their in-flight
                # request; a graceful close drained the queues already.
                while not self._closing and ticket is None:
                    ticket = self._next_ticket()
                    if ticket is None:
                        self._condition.wait()
                if ticket is None:
                    return
            ticket._mark_started()
            self.metrics.histogram(
                "repro_dispatcher_queue_wait_seconds",
                help="Submission-to-start wait per request.",
                tenant=ticket.request.tenant,
            ).observe(ticket.queue_latency)
            tenant = ticket.request.tenant
            events = events_for(self.metrics)
            # Everything the request does on this thread (and on the
            # materializer thread, which inherits through the write queue)
            # journals under the ticket's correlation ID.
            with correlation_scope(ticket.correlation_id):
                events.emit(
                    "dispatch_dequeue", tenant=tenant,
                    wait_s=round(ticket.queue_latency, 6),
                )
                try:
                    ticket.result = self._execute(ticket)
                except BaseException as exc:  # surfaced via ticket.value()
                    ticket.error = exc
                finally:
                    # Keep _mark_finished and on_complete adjacent: callers
                    # unblock on the former, telemetry records in the latter,
                    # and anything slow in between (like a journal write)
                    # widens the window where a woken caller reads telemetry
                    # that does not yet include its own request.
                    ticket._mark_finished()
                    if self._on_complete is not None:
                        try:
                            self._on_complete(ticket)
                        except BaseException:
                            pass
                    events.emit(
                        "dispatch_finish", tenant=tenant,
                        ok=ticket.error is None,
                        seconds=round(ticket.total_latency, 6),
                        error=repr(ticket.error) if ticket.error is not None else "",
                    )
                    self.metrics.maybe_flush()
                    with self._condition:
                        self._busy.discard(tenant)
                        self._busy_gauge.set(len(self._busy))
                        self._condition.notify_all()
