"""Multi-tenant workflow service over a shared, cost-aware artifact cache.

The modules, bottom-up:

* :mod:`repro.service.cache` — :class:`SharedArtifactCache` (admission
  control, per-tenant quotas, cost-aware vs. LRU eviction) and the
  per-tenant :class:`TenantStoreView` sessions program against.
* :mod:`repro.service.dispatcher` — :class:`FairDispatcher`: per-tenant
  FIFO queues, round-robin fairness, a bounded worker pool.
* :mod:`repro.service.service` — :class:`WorkflowService`, tying cache +
  dispatcher + per-tenant sessions + telemetry together.
* :mod:`repro.service.client` — :class:`ServiceClient`, the in-process
  tenant API (`repro submit` and the service benchmark drive this).
* :mod:`repro.service.telemetry` — per-tenant latency/hit-rate/reuse
  aggregation behind ``WorkflowService.summary()``.
"""

from repro.service.cache import (
    AdmissionControlledPolicy,
    CacheConfig,
    SharedArtifactCache,
    TenantStoreView,
)
from repro.service.client import ServiceClient
from repro.service.dispatcher import FairDispatcher, RequestTicket, RunRequest, ServiceError
from repro.service.service import ServiceConfig, WorkflowService
from repro.service.telemetry import ServiceTelemetry, TenantTelemetry, percentile

__all__ = [
    "AdmissionControlledPolicy",
    "CacheConfig",
    "FairDispatcher",
    "RequestTicket",
    "RunRequest",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceTelemetry",
    "SharedArtifactCache",
    "TenantStoreView",
    "TenantTelemetry",
    "WorkflowService",
    "percentile",
]
