"""The multi-tenant workflow service.

One :class:`WorkflowService` owns:

* a :class:`~repro.service.cache.SharedArtifactCache` rooted under the
  service directory (or per-tenant isolated stores, for baselines);
* one lazily created :class:`~repro.core.session.HelixSession` per tenant
  (tenant state — versions, cost history, change tracking — lives under
  ``<root>/tenants/<tenant>/``, while artifacts flow through the shared
  cache via a :class:`~repro.service.cache.TenantStoreView`);
* a :class:`~repro.service.dispatcher.FairDispatcher` that runs requests on
  a bounded worker pool with per-tenant FIFO ordering and round-robin
  fairness;
* a :class:`~repro.service.telemetry.ServiceTelemetry` aggregating latency,
  reuse, and cache-hit statistics per tenant.

Usage::

    from repro.service import ServiceConfig, WorkflowService
    from repro.workloads.census_workload import build_census_workflow

    with WorkflowService("/tmp/helix_svc", ServiceConfig(n_workers=4)) as svc:
        ticket = svc.submit("alice", workflow=build_census_workflow())
        result = ticket.value(timeout=120)      # a SessionRunResult
        print(svc.summary()["cache_hit_rate"])
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.baselines.strategies import HELIX, ExecutionStrategy
from repro.core.session import HelixSession, SessionRunResult
from repro.graph.dag import NodeState
from repro.service.cache import (
    AdmissionControlledPolicy,
    CacheConfig,
    SharedArtifactCache,
)
from repro.obs.bridge import install_periodic_flush
from repro.obs.events import EventLog, NULL_EVENT_LOG, events_path
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY, get_registry
from repro.service.dispatcher import FairDispatcher, RequestTicket, RunRequest, ServiceError
from repro.service.telemetry import ServiceTelemetry
from repro.dsl.workflow import Workflow


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a deployment chooses about one service instance."""

    n_workers: int = 2
    strategy: ExecutionStrategy = HELIX
    backend: str = "serial"
    parallelism: Optional[int] = None
    #: Intra-operator partition count per tenant session (``None`` = off);
    #: partitioned outputs land in the shared cache as chunked artifacts,
    #: so partial chunk hits work across tenants too.
    partitions: Optional[int] = None
    #: Storage layer under the shared cache (or each isolated store):
    #: ``None``/"disk" (flat files), "sharded", "memory", or "tiered" — the
    #: memory-over-disk composition that serves hot artifacts without disk
    #: reads or deserialization.  ``memory_tier_mb`` sizes the tiered
    #: backend's memory tier (its default is 256 MB); ``codec`` picks the
    #: serialization policy ("auto" = per value by type and size).
    store_backend: Optional[str] = None
    memory_tier_mb: Optional[float] = None
    codec: str = "auto"
    cache: CacheConfig = CacheConfig()
    #: ``False`` gives every tenant an isolated store under its own
    #: workspace — the no-sharing baseline the benchmark compares against.
    shared_cache: bool = True
    #: Storage budget per isolated tenant store (only when not sharing).
    isolated_budget_bytes: Optional[float] = None
    #: Runtime metrics destination (see :mod:`repro.obs`).  ``None`` (the
    #: default) gives the service a *private* registry so two services in
    #: one process never mix series; ``True`` uses the process-wide default
    #: registry, ``False`` disables hot-layer instrumentation (request
    #: telemetry still works via a private registry), and a
    #: :class:`~repro.obs.registry.MetricsRegistry` instance is used as-is.
    #: The resolved registry is exposed as ``WorkflowService.metrics_registry``.
    metrics: Any = None
    #: Structured event journal (see :mod:`repro.obs.events`).  ``None``
    #: journals to ``<root>/events.jsonl`` (unless metrics are disabled),
    #: ``False`` disables journaling, an :class:`~repro.obs.events.EventLog`
    #: instance is used as-is.  Exposed as ``WorkflowService.events``.
    events: Any = None
    #: ``"HOST:PORT"`` to serve the live observability plane (``/metrics``,
    #: ``/healthz``, ``/readyz``, ``/events``, ``/runs``) over HTTP for the
    #: service's lifetime — the ``repro serve --listen`` knob.  Port 0 binds
    #: an ephemeral port; the bound server is ``WorkflowService.obs_server``.
    obs_listen: Optional[str] = None


class WorkflowService:
    """Accepts run requests from many tenants; executes them fairly over a
    bounded session pool with all materialization routed through one shared,
    cost-aware artifact cache."""

    def __init__(self, root: str, config: ServiceConfig = ServiceConfig()) -> None:
        self.root = root
        self.config = config
        os.makedirs(root, exist_ok=True)
        if isinstance(config.metrics, MetricsRegistry):
            self.metrics_registry = config.metrics
        elif config.metrics is True:
            self.metrics_registry = get_registry()
        elif config.metrics is False:
            self.metrics_registry = NULL_REGISTRY
        else:
            # A private registry per service: two services in one process
            # (e.g. shared-vs-isolated benchmark arms) must not mix series.
            self.metrics_registry = MetricsRegistry()
        if isinstance(config.events, EventLog):
            self.events = config.events
        elif config.events is False or not self.metrics_registry.enabled:
            self.events = NULL_EVENT_LOG
        else:
            self.events = EventLog(events_path(root))
        if self.metrics_registry.enabled and self.events.enabled:
            # Ride the registry (the slow-op-log idiom): dispatcher, cache,
            # catalog, scheduler, and tenant sessions all emit through the
            # registry handle they already hold.
            self.metrics_registry.event_log = self.events
        # Keep <root>/metrics.json fresh while requests flow; dispatcher
        # workers and the materializer tick this (rate-limited, atomic).
        install_periodic_flush(self.metrics_registry, root)
        self.cache: Optional[SharedArtifactCache] = (
            SharedArtifactCache(
                os.path.join(root, "cache"),
                config.cache,
                store_backend=config.store_backend,
                memory_tier_bytes=(
                    config.memory_tier_mb * 1024 * 1024
                    if config.memory_tier_mb is not None
                    else None
                ),
                codec=config.codec,
                metrics=self.metrics_registry,
            )
            if config.shared_cache
            else None
        )
        # Request bookkeeping must survive metrics=False (summary()/render()
        # are service API, not diagnostics), so telemetry falls back to a
        # private registry when the shared one is disabled.
        self.telemetry = ServiceTelemetry(
            registry=self.metrics_registry if self.metrics_registry.enabled else None
        )
        self._sessions: Dict[str, HelixSession] = {}
        self._sessions_lock = threading.Lock()
        self._dispatcher = FairDispatcher(
            self._execute,
            n_workers=config.n_workers,
            on_complete=self._record,
            metrics=self.metrics_registry,
        )
        self._closed = False
        self.obs_server = None
        if config.obs_listen:
            from repro.obs.httpd import ObservabilityServer

            self.obs_server = ObservabilityServer(
                config.obs_listen,
                registry=self.metrics_registry,
                events=self.events,
                health_checks={
                    "dispatcher": self._dispatcher.health,
                    "catalog": self._catalog_health,
                },
                ready_checks={"dispatcher": self._dispatcher.accepting},
            ).start()

    def _catalog_health(self):
        """/healthz check: the shared cache's catalog (when SQLite) answers."""
        if self.cache is None:
            return True, "no shared cache (isolated stores)"
        catalog_db = getattr(self.cache, "catalog_db", None)
        if catalog_db is None:
            return True, "no sqlite catalog (nothing to probe)"
        catalog_db.ping()  # raises StorageError when closed/unreachable
        return True, "catalog answering"

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def _tenant_workspace(self, tenant: str) -> str:
        return os.path.join(self.root, "tenants", tenant)

    def session_for(self, tenant: str) -> HelixSession:
        """The tenant's session, created on first use.

        Safe to call concurrently; the dispatcher guarantees at most one
        *run* per tenant at a time, so the session itself needs no lock.
        """
        with self._sessions_lock:
            if tenant not in self._sessions:
                workspace = self._tenant_workspace(tenant)
                if self.cache is not None:
                    cache = self.cache
                    self._sessions[tenant] = HelixSession(
                        workspace,
                        strategy=self.config.strategy,
                        backend=self.config.backend,
                        parallelism=self.config.parallelism,
                        partitions=self.config.partitions,
                        store=cache.view(tenant),
                        materialization_wrapper=lambda policy, _tenant=tenant: (
                            AdmissionControlledPolicy(policy, cache, _tenant)
                        ),
                        trace_owner=tenant,
                        metrics=self.metrics_registry,
                    )
                else:
                    self._sessions[tenant] = HelixSession(
                        workspace,
                        strategy=self.config.strategy,
                        backend=self.config.backend,
                        parallelism=self.config.parallelism,
                        partitions=self.config.partitions,
                        store_backend=self.config.store_backend,
                        memory_tier_mb=self.config.memory_tier_mb,
                        codec=self.config.codec,
                        storage_budget=self.config.isolated_budget_bytes,
                        trace_owner=tenant,
                        metrics=self.metrics_registry,
                    )
            return self._sessions[tenant]

    def tenants(self) -> List[str]:
        with self._sessions_lock:
            return sorted(self._sessions)

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        workflow: Optional[Workflow] = None,
        build: Optional[Callable[[], Workflow]] = None,
        description: str = "",
        change_category: str = "",
    ) -> RequestTicket:
        """Queue one run for ``tenant``; returns immediately with a ticket."""
        if self._closed:
            self.events.emit("service_reject", tenant=tenant, reason="service closed")
            raise ServiceError("service is closed")
        if workflow is None and build is None:
            raise ServiceError("submit() needs a workflow or a build callable")
        request = RunRequest(
            tenant=tenant,
            workflow=workflow,
            build=build,
            description=description,
            change_category=change_category,
        )
        return self._dispatcher.submit(request)

    def run_sync(
        self,
        tenant: str,
        workflow: Optional[Workflow] = None,
        build: Optional[Callable[[], Workflow]] = None,
        description: str = "",
        timeout: Optional[float] = None,
    ) -> SessionRunResult:
        """Submit and block until the result is available."""
        return self.submit(tenant, workflow=workflow, build=build, description=description).value(
            timeout=timeout
        )

    def _execute(self, ticket: RequestTicket) -> SessionRunResult:
        request = ticket.request
        session = self.session_for(request.tenant)
        result = session.run(
            request.materialize_workflow(),
            description=request.description,
            change_category=request.change_category,
        )
        if self.cache is not None:
            # Teach the eviction scorer what each cached signature is worth:
            # the measured seconds its recomputation just cost this tenant.
            self.cache.note_compute_costs({
                stats.signature: stats.compute_time
                for stats in result.report.node_stats.values()
                if stats.state is NodeState.COMPUTE and stats.compute_time > 0
            })
            # Catalog writes batch; one flush per finished request makes the
            # run's artifacts durable for other processes sharing the root.
            self.cache.flush()
        return result

    def _record(self, ticket: RequestTicket) -> None:
        """Dispatcher completion hook: fold the finished ticket into telemetry."""
        if ticket.error is not None:
            self.telemetry.record_error(ticket)
        elif ticket.result is not None:
            self.telemetry.record_run(ticket, ticket.result.report)

    # ------------------------------------------------------------------
    # Introspection and shutdown
    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for every queued request to finish."""
        return self._dispatcher.drain(timeout)

    def explain(self, tenant: str, run: Optional[int] = None) -> str:
        """Render one tenant's run decisions (``HelixSession.explain``).

        Traces are attributed per tenant — each tenant session persists its
        own JSONL under ``<root>/tenants/<tenant>/traces/`` — so one tenant's
        explain never leaks another's workload structure.  A read-only query:
        an unknown tenant name raises instead of minting a session (and a
        workspace directory) for the typo.
        """
        with self._sessions_lock:
            session = self._sessions.get(tenant)
        if session is not None:
            return session.explain(run=run)
        from repro.core.workspace import resolve_trace_dir, resolve_trace_file
        from repro.introspect import ExplainRenderer, RunTrace

        trace_dir = resolve_trace_dir(self.root, tenant=tenant)
        return ExplainRenderer(RunTrace.load(resolve_trace_file(trace_dir, run))).render_ascii()

    def summary(self) -> Dict[str, Any]:
        """Telemetry snapshot joined with the cache's own counters."""
        cache_stats = self.cache.snapshot() if self.cache is not None else None
        return self.telemetry.snapshot(cache_stats)

    def close(self, wait: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        self._dispatcher.close(wait=wait)
        if self.cache is not None:
            # Flush deferred access metadata and release the catalog handle.
            self.cache.close()
        hook = self.metrics_registry.flush_hook
        if hook is not None:
            try:
                hook(force=True)  # final metrics.json, bypassing the rate limit
            except TypeError:
                hook()
            except Exception:
                pass
        if self.obs_server is not None:
            self.obs_server.close()
            self.obs_server = None
        if self.events is not NULL_EVENT_LOG:
            self.events.close()

    def __enter__(self) -> "WorkflowService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(wait=exc_type is None)
