"""The shared, cost-aware artifact cache behind the multi-tenant service.

Helix's reuse story so far was per-session: one `HelixSession` materializes
intermediates and its own later iterations load them.  The service layer
turns that into a *cross-tenant* economy: every tenant's materialization
flows through one :class:`SharedArtifactCache`, so user B's workflow can
load artifacts user A already paid to compute.  Three mechanisms keep the
shared store healthy under contention:

* **Admission control** — the online materialization decision (the paper's
  Section 2.4 cost-model rule) is wrapped by
  :class:`AdmissionControlledPolicy`, which declines artifacts that are too
  cheap to be worth caching or too large to ever fit a tenant's quota.
* **Per-tenant quotas** — each artifact's bytes are attributed to the tenant
  whose run materialized it; a tenant over quota reclaims space from its own
  artifacts before the write lands.  Quotas are *soft*: pinned artifacts
  (in-flight plans) are never evicted, so transient overshoot is possible
  and is reclaimed by the next write.
* **Cost-aware eviction** — when the global budget is exceeded the cache
  evicts the artifacts with the lowest *recompute-cost-saved per byte*,
  repurposing the materialization cost model as an eviction score; plain
  LRU is available as the comparison baseline (``eviction="lru"``).

The cache subclasses :class:`~repro.execution.store.ArtifactStore`, so the
execution engine and wavefront scheduler work against it unchanged; tenants
access it through :class:`TenantStoreView`, which attributes every read and
write to its tenant for quota accounting and hit telemetry.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.execution.store import ArtifactMeta, ArtifactStore, ChunkStoreOps
from repro.graph.dag import Dag
from repro.obs.events import events_for
from repro.obs.registry import MetricsRegistry
from repro.optimizer.cost_model import NodeCosts
from repro.optimizer.materialization import MaterializationDecision, MaterializationPolicy
from repro.storage.catalog import JSON_SIDECAR_FILENAME as _SIDECAR_FILENAME


@dataclass(frozen=True)
class CacheConfig:
    """Knobs for the shared cache.

    Parameters
    ----------
    budget_bytes:
        Global cache capacity (``None`` = unbounded).  Enforced by eviction,
        not by rejecting writes: the cache reports an infinite remaining
        budget to the planner and reclaims space as writes arrive.
    tenant_quota_bytes:
        Per-tenant attribution cap (``None`` = unbounded).  A tenant over
        quota evicts *its own* artifacts first; admission control declines
        artifacts that could never fit.
    eviction:
        ``"cost"`` (default) evicts the lowest recompute-cost-saved per byte
        first; ``"lru"`` evicts the least recently accessed first.
    admission_min_compute_cost:
        Artifacts whose producing computation took less than this many
        seconds are not worth caching and are declined at decision time.
    admission_max_budget_fraction:
        Decline (at write time, against exact payload bytes) artifacts
        larger than this fraction of the global budget — one artifact must
        not monopolize the shared cache.  Only applies when ``budget_bytes``
        is set.
    """

    budget_bytes: Optional[float] = None
    tenant_quota_bytes: Optional[float] = None
    eviction: str = "cost"
    admission_min_compute_cost: float = 0.0
    admission_max_budget_fraction: float = 0.5


@dataclass
class CacheStats:
    """Monotonic counters the telemetry layer snapshots."""

    hits: int = 0
    cross_tenant_hits: int = 0
    puts: int = 0
    evictions: int = 0
    evicted_bytes: float = 0.0
    admission_rejections: int = 0
    recompute_seconds_saved: float = 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "cross_tenant_hits": self.cross_tenant_hits,
            "puts": self.puts,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "admission_rejections": self.admission_rejections,
            "recompute_seconds_saved": round(self.recompute_seconds_saved, 6),
        }


class SharedArtifactCache(ArtifactStore):
    """One artifact store shared by every tenant of a :class:`WorkflowService`.

    All of :class:`~repro.execution.store.ArtifactStore`'s surface keeps
    working (the scheduler's materializer calls ``put_bytes``, loads call
    ``get``); the tenant-attributed entry points ``put_bytes_for`` /
    ``get_for`` are what :class:`TenantStoreView` routes through.
    """

    def __init__(
        self,
        root: str,
        config: CacheConfig = CacheConfig(),
        store_backend: Optional[str] = None,
        memory_tier_bytes: Optional[float] = None,
        codec: str = "auto",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        # The base class's hard budget would make over-quota writes raise;
        # the cache instead reclaims space by eviction, so the base budget
        # stays unset and `remaining_budget` reports "unbounded" upward.
        # Backend and codec plumb straight through to the storage layer: a
        # tiered cache serves every tenant's hot set from its memory tier
        # (sizing a memory tier without a backend implies "tiered" — the
        # rule lives in backend_from_spec).
        super().__init__(
            root,
            budget_bytes=None,
            backend=store_backend,
            codec=codec,
            memory_tier_bytes=memory_tier_bytes,
            metrics=metrics,
        )
        self.config = config
        self.stats = CacheStats()
        self._used_bytes_gauge = self.metrics.gauge(
            "repro_cache_used_bytes", help="Bytes currently held by the shared cache."
        )
        self._evictions_total = self.metrics.counter(
            "repro_cache_evictions_total", help="Artifacts evicted from the shared cache."
        )
        self._evicted_bytes_total = self.metrics.counter(
            "repro_cache_evicted_bytes_total", help="Bytes reclaimed by cache eviction."
        )
        self._rejections_total = self.metrics.counter(
            "repro_cache_admission_rejections_total",
            help="Artifacts declined by cache admission control.",
        )
        # Signature → tenant whose run first materialized the artifact (the
        # tenant whose quota the bytes are charged to), and signature →
        # measured compute seconds (the recompute cost the artifact saves).
        self._owners: Dict[str, str] = {}
        self._compute_costs: Dict[str, float] = {}
        # Serializes the evict-then-write sequence so concurrent tenants
        # cannot both conclude there is room for their artifact.
        self._admission_lock = threading.Lock()
        self._load_sidecar()

    # ------------------------------------------------------------------
    # Sidecar persistence (ownership + recompute costs survive restarts)
    #
    # Under a SQLite catalog the attribution tables (`owners`,
    # `compute_costs`) live in the same database as the artifact rows, so
    # mutations are row-level deltas; un-migrated JSON workspaces keep the
    # legacy whole-file `cache_meta.json` rewrite.
    # ------------------------------------------------------------------
    def _sidecar_path(self) -> str:
        return os.path.join(self.root, _SIDECAR_FILENAME)

    def _load_sidecar(self) -> None:
        db = self.catalog_db
        if db is not None:
            with self._lock:
                self._owners = db.owners(known_only=True)
                self._compute_costs = db.compute_costs()
            return
        path = self._sidecar_path()
        if not os.path.exists(path):
            return
        try:
            with open(path, "r") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return  # best-effort: a torn sidecar only loses attribution hints
        with self._lock:
            known = set(self.signatures())
            self._owners = {
                sig: tenant for sig, tenant in payload.get("owners", {}).items() if sig in known
            }
            self._compute_costs = {
                sig: float(cost) for sig, cost in payload.get("compute_costs", {}).items()
            }

    def _save_sidecar(self) -> None:
        path = self._sidecar_path()
        temp_path = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        payload = {"owners": self._owners, "compute_costs": self._compute_costs}
        try:
            with open(temp_path, "w") as handle:
                json.dump(payload, handle, indent=2)
            os.replace(temp_path, path)
        except OSError:
            with contextlib.suppress(OSError):
                os.remove(temp_path)

    def _persist_owner(self, signature: str, tenant: str) -> None:
        """Persist one new ownership attribution (called under ``self._lock``)."""
        db = self.catalog_db
        if db is not None:
            db.set_owner(signature, tenant)
        else:
            self._save_sidecar()

    def _persist_costs(self, costs_by_signature: Dict[str, float]) -> None:
        """Persist a batch of recompute costs (called under ``self._lock``)."""
        db = self.catalog_db
        if db is not None:
            db.set_compute_costs(
                {sig: self._compute_costs[sig] for sig in costs_by_signature}
            )
        else:
            self._save_sidecar()

    def _persist_removed_owners(self, signatures: List[str]) -> None:
        """Drop evicted signatures' attribution (called under ``self._lock``)."""
        db = self.catalog_db
        if db is not None:
            db.delete_owners(signatures)
        else:
            self._save_sidecar()

    # ------------------------------------------------------------------
    # Budget surface seen by the planner
    # ------------------------------------------------------------------
    def remaining_budget(self) -> float:
        """The planner sees an unbounded store: capacity is managed by eviction."""
        return float("inf")

    # ------------------------------------------------------------------
    # Cost bookkeeping
    # ------------------------------------------------------------------
    def note_compute_cost(self, signature: str, seconds: float) -> None:
        """Record the measured compute seconds a cached signature saves."""
        self.note_compute_costs({signature: seconds})

    def note_compute_costs(self, costs_by_signature: Dict[str, float]) -> None:
        """Batch form of :meth:`note_compute_cost` — one sidecar write.

        The service feeds this once per finished run from the run's node
        stats, so the eviction scorer ranks artifacts by *measured*
        recompute value.
        """
        if not costs_by_signature:
            return
        with self._lock:
            for signature, seconds in costs_by_signature.items():
                self._compute_costs[signature] = max(
                    float(seconds), self._compute_costs.get(signature, 0.0)
                )
            self._persist_costs(costs_by_signature)

    def compute_cost(self, signature: str) -> Optional[float]:
        with self._lock:
            return self._compute_costs.get(signature)

    def count_admission_rejection(self) -> None:
        with self._lock:
            self.stats.admission_rejections += 1
        self._rejections_total.inc()
        events_for(self.metrics).emit("cache_admission_reject")

    def _cost_score(self, meta: ArtifactMeta) -> float:
        """Recompute-cost-saved per byte; evicting the lowest first loses least.

        Signatures never observed computing (e.g. restored from a previous
        process before any run reported costs) fall back to the artifact's
        write time — a weak proxy that at least scales with size — so they
        rank below artifacts with measured expensive recomputes.
        """
        cost = self._compute_costs.get(meta.signature)
        if cost is None:
            cost = meta.write_time
        return cost / max(meta.size, 1.0)

    def eviction_policy(self):
        """The configured policy in `ArtifactStore.evict` form."""
        return self._cost_score if self.config.eviction == "cost" else "lru"

    # ------------------------------------------------------------------
    # Tenant accounting
    # ------------------------------------------------------------------
    def owner_of(self, signature: str) -> Optional[str]:
        with self._lock:
            return self._owners.get(signature)

    def tenant_used_bytes(self, tenant: str) -> float:
        with self._lock:
            return sum(
                meta.size
                for signature, meta in self.catalog().items()
                if self._owners.get(signature) == tenant
            )

    def tenants(self) -> List[str]:
        with self._lock:
            return sorted(set(self._owners.values()))

    # ------------------------------------------------------------------
    # Attributed reads and writes
    # ------------------------------------------------------------------
    def admits_size(self, size: float) -> bool:
        """Size-based admission against *exact* bytes (decision-time checks
        only see the planner's estimates, which default wildly for
        never-executed nodes)."""
        quota = self.config.tenant_quota_bytes
        if quota is not None and size > quota:
            return False
        budget = self.config.budget_bytes
        if budget is not None and size > budget * self.config.admission_max_budget_fraction:
            return False
        return True

    def put_bytes_for(
        self,
        tenant: str,
        signature: str,
        node_name: str,
        payload: bytes,
        started_at: Optional[float] = None,
        codec: str = "pickle",
    ) -> Optional[ArtifactMeta]:
        """Admit one tenant's artifact, evicting as needed to make room.

        Returns ``None`` when the artifact fails size admission (it could
        never fit its quota, or would monopolize the global budget) — the
        scheduler treats that as "computed but not durable".
        """
        size = float(len(payload))
        if not self.admits_size(size):
            self.count_admission_rejection()
            return None
        with self._admission_lock:
            self._reclaim_for(tenant, size)
            meta = super().put_bytes(signature, node_name, payload, started_at=started_at, codec=codec)
        with self._lock:
            # Re-materializing an existing signature keeps the original
            # owner: the bytes were first paid for by that tenant's quota.
            owner = self._owners.setdefault(signature, tenant)
            self.stats.puts += 1
            self._persist_owner(signature, owner)
        if self.metrics.enabled:
            self.metrics.counter(
                "repro_cache_puts_total", help="Artifacts admitted into the shared cache.",
                tenant=tenant,
            ).inc()
            self._used_bytes_gauge.set(self.used_bytes())
        return meta

    def _reclaim_for(self, tenant: str, incoming_bytes: float) -> None:
        """Evict (tenant-local, then global) so ``incoming_bytes`` fits."""
        quota = self.config.tenant_quota_bytes
        if quota is not None:
            tenant_over = self.tenant_used_bytes(tenant) + incoming_bytes - quota
            if tenant_over > 0:
                self._evict_owned(tenant, tenant_over)
        budget = self.config.budget_bytes
        if budget is not None:
            over = self.used_bytes() + incoming_bytes - budget
            if over > 0:
                self._record_evicted(self.evict(over, policy=self.eviction_policy()))

    def _evict_owned(self, tenant: str, bytes_needed: float) -> None:
        """Evict only ``tenant``'s own artifacts, in configured policy order."""
        policy = self.eviction_policy()

        def scoped(meta: ArtifactMeta) -> float:
            base = self._cost_score(meta) if callable(policy) else meta.accessed_at()
            # Foreign artifacts sort last (infinite score = never chosen
            # before every owned candidate); evict() stops once enough owned
            # bytes are freed, so they are never actually deleted here.
            return base if self._owners.get(meta.signature) == tenant else float("inf")

        owned_unpinned = sum(
            meta.size
            for signature, meta in self.catalog().items()
            if self._owners.get(signature) == tenant and signature not in self._pins
        )
        # Never let the foreign tail of the candidate list absorb the
        # request: cap at what the tenant can actually free.
        self._record_evicted(self.evict(min(bytes_needed, owned_unpinned), policy=scoped))

    def _record_evicted(self, evicted: List[ArtifactMeta]) -> None:
        if not evicted:
            return
        with self._lock:
            for meta in evicted:
                self.stats.evictions += 1
                self.stats.evicted_bytes += meta.size
                self._owners.pop(meta.signature, None)
            self._persist_removed_owners([meta.signature for meta in evicted])
        if self.metrics.enabled:
            self._evictions_total.inc(len(evicted))
            self._evicted_bytes_total.inc(sum(meta.size for meta in evicted))
            self._used_bytes_gauge.set(self.used_bytes())
        events = events_for(self.metrics)
        if events.enabled:
            for meta in evicted:
                events.emit(
                    "cache_evict",
                    signature=meta.signature,
                    node=meta.node_name,
                    bytes=meta.size,
                )

    def get_for(self, tenant: str, signature: str) -> Tuple[Any, float]:
        """Attributed load: counts the hit and the recompute seconds it saved."""
        value, elapsed = super().get(signature)
        with self._lock:
            self.stats.hits += 1
            owner = self._owners.get(signature)
            cross = owner is not None and owner != tenant
            if cross:
                self.stats.cross_tenant_hits += 1
            saved = self._compute_costs.get(signature, 0.0) - elapsed
            if saved > 0:
                self.stats.recompute_seconds_saved += saved
        if self.metrics.enabled:
            self.metrics.counter(
                "repro_cache_hits_total",
                help="Attributed cache loads (origin: own or cross-tenant artifact).",
                tenant=tenant, origin="cross" if cross else "own",
            ).inc()
        return value, elapsed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """One JSON-friendly dictionary describing cache state and traffic."""
        with self._lock:
            per_tenant = {tenant: self.tenant_used_bytes(tenant) for tenant in set(self._owners.values())}
            snapshot = {
                "artifacts": len(self.catalog()),
                "used_bytes": self.used_bytes(),
                "budget_bytes": self.config.budget_bytes,
                "tenant_quota_bytes": self.config.tenant_quota_bytes,
                "eviction": self.config.eviction,
                "backend": self._backend.name,
                "bytes_by_tenant": per_tenant,
                **self.stats.to_dict(),
            }
        tier_stats = getattr(self._backend, "tier_stats", None)
        if callable(tier_stats):
            snapshot["tiers"] = tier_stats()
        return snapshot

    def view(self, tenant: str) -> "TenantStoreView":
        return TenantStoreView(self, tenant)


class TenantStoreView(ChunkStoreOps):
    """The store one tenant's :class:`HelixSession` programs against.

    Implements the :class:`~repro.execution.store.ArtifactStore` surface the
    session, engine, and scheduler use, forwarding everything to the shared
    cache with reads and writes attributed to ``tenant``.  One view instance
    is private to one session, so attribution survives the scheduler's
    background materializer thread (no thread-local context needed).
    Chunked-artifact operations come from
    :class:`~repro.execution.store.ChunkStoreOps`, which routes through the
    attributed ``get``/``put_bytes`` below — a tenant's partition chunks
    charge its quota like any other artifact.
    """

    def __init__(self, cache: SharedArtifactCache, tenant: str) -> None:
        self.cache = cache
        self.tenant = tenant

    # -- identity ------------------------------------------------------
    @property
    def root(self) -> str:
        return self.cache.root

    @property
    def budget_bytes(self) -> Optional[float]:
        return self.cache.config.budget_bytes

    @property
    def catalog_format(self) -> str:
        return self.cache.catalog_format

    @property
    def catalog_db(self):
        """The shared cache's SQLite catalog handle (``None`` on JSON roots) —
        sessions running over a tenant view index their run traces here."""
        return self.cache.catalog_db

    @property
    def metrics(self) -> MetricsRegistry:
        """The cache's metrics registry — sessions over a view inherit it."""
        return self.cache.metrics

    # -- queries (unattributed pass-throughs) --------------------------
    def has(self, signature: str) -> bool:
        return self.cache.has(signature)

    def meta(self, signature: str) -> ArtifactMeta:
        return self.cache.meta(signature)

    def catalog(self) -> Dict[str, ArtifactMeta]:
        return self.cache.catalog()

    def signatures(self) -> List[str]:
        return self.cache.signatures()

    def used_bytes(self) -> float:
        return self.cache.used_bytes()

    def remaining_budget(self) -> float:
        return self.cache.remaining_budget()

    def sizes_by_signature(self) -> Dict[str, float]:
        return self.cache.sizes_by_signature()

    def load_costs_by_signature(self) -> Dict[str, float]:
        return self.cache.load_costs_by_signature()

    def memory_resident_signatures(self):
        return self.cache.memory_resident_signatures()

    def codecs_by_signature(self) -> Dict[str, str]:
        return self.cache.codecs_by_signature()

    def tier_of(self, signature: str) -> Optional[str]:
        return self.cache.tier_of(signature)

    def storage_info(self) -> Dict[str, Any]:
        return self.cache.storage_info()

    def pinned_signatures(self) -> List[str]:
        return self.cache.pinned_signatures()

    def flush(self) -> None:
        self.cache.flush()

    # -- attributed mutations ------------------------------------------
    @staticmethod
    def serialize(node_name: str, value: Any) -> bytes:
        return ArtifactStore.serialize(node_name, value)

    def encode(self, node_name: str, value: Any) -> Tuple[bytes, str]:
        return self.cache.encode(node_name, value)

    def put(self, signature: str, node_name: str, value: Any) -> Optional[ArtifactMeta]:
        started = time.perf_counter()
        payload, codec = self.encode(node_name, value)
        return self.put_bytes(signature, node_name, payload, started_at=started, codec=codec)

    def put_bytes(
        self,
        signature: str,
        node_name: str,
        payload: bytes,
        started_at: Optional[float] = None,
        codec: str = "pickle",
    ) -> Optional[ArtifactMeta]:
        """May return ``None``: the cache declines artifacts that fail size
        admission (see :meth:`SharedArtifactCache.put_bytes_for`)."""
        return self.cache.put_bytes_for(
            self.tenant, signature, node_name, payload, started_at=started_at, codec=codec
        )

    def get(self, signature: str) -> Tuple[Any, float]:
        return self.cache.get_for(self.tenant, signature)

    def delete(self, signature: str) -> None:
        self.cache.delete(signature)

    def pin(self, signatures: Iterable[str]):
        return self.cache.pin(signatures)

    def evict(self, bytes_needed: float, policy="lru") -> List[ArtifactMeta]:
        return self.cache.evict(bytes_needed, policy=policy)


class AdmissionControlledPolicy(MaterializationPolicy):
    """Wraps a strategy's materialization policy with cache admission control.

    The inner policy implements the paper's online materialization rule;
    this wrapper adds a multi-tenant concern the paper's single-user setting
    never had: artifacts cheaper to recompute than
    ``admission_min_compute_cost`` seconds are declined — caching them
    spends shared bytes to save nearly nothing.

    Size-based admission (tenant quota, budget fraction) deliberately does
    *not* happen here: at decision time only the planner's size estimates
    exist, and a never-executed node's estimate is a global default that
    would mis-classify everything.  The cache enforces size limits against
    exact payload bytes in :meth:`SharedArtifactCache.put_bytes_for`.
    """

    name = "cache_admission"

    def __init__(
        self, inner: MaterializationPolicy, cache: SharedArtifactCache, tenant: str
    ) -> None:
        self.inner = inner
        self.cache = cache
        self.tenant = tenant

    def decide(
        self,
        node: str,
        dag: Dag,
        costs: Dict[str, NodeCosts],
        remaining_budget: float,
    ) -> MaterializationDecision:
        node_costs = costs.get(node)
        if node_costs is not None and not self._admit(node_costs):
            self.cache.count_admission_rejection()
            return MaterializationDecision(
                node=node,
                materialize=False,
                score=0.0,
                size=node_costs.output_size,
                remaining_budget=remaining_budget,
                reason="declined by cache admission control",
            )
        return self.inner.decide(node=node, dag=dag, costs=costs, remaining_budget=remaining_budget)

    def _admit(self, node_costs: NodeCosts) -> bool:
        return node_costs.compute_cost >= self.cache.config.admission_min_compute_cost
