"""In-process client API for the workflow service.

A :class:`ServiceClient` binds one tenant identity to a service instance and
exposes the natural verbs: fire-and-forget ``submit``, blocking ``run``, and
``run_workload`` for replaying a whole iteration sequence (a
:class:`~repro.workloads.spec.WorkloadSpec`) in order.  The client is what
`repro submit` and the service benchmark drive; a network transport would
slot in behind this same surface.

Usage::

    client = ServiceClient(service, tenant="alice")
    result = client.run(build_census_workflow())          # blocking
    results = client.run_workload(census_workload(), n_iterations=5)
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.session import SessionRunResult
from repro.dsl.workflow import Workflow
from repro.service.dispatcher import RequestTicket
from repro.service.service import WorkflowService
from repro.workloads.spec import WorkloadSpec


class ServiceClient:
    """One tenant's handle on a :class:`WorkflowService`."""

    def __init__(self, service: WorkflowService, tenant: str) -> None:
        self.service = service
        self.tenant = tenant

    def submit(
        self,
        workflow: Optional[Workflow] = None,
        build: Optional[Callable[[], Workflow]] = None,
        description: str = "",
        change_category: str = "",
    ) -> RequestTicket:
        """Queue one run; returns a ticket immediately."""
        return self.service.submit(
            self.tenant,
            workflow=workflow,
            build=build,
            description=description,
            change_category=change_category,
        )

    def run(
        self,
        workflow: Optional[Workflow] = None,
        build: Optional[Callable[[], Workflow]] = None,
        description: str = "",
        timeout: Optional[float] = None,
    ) -> SessionRunResult:
        """Submit and block for the result (re-raising worker-side failures)."""
        return self.submit(workflow=workflow, build=build, description=description).value(timeout)

    def submit_workload(
        self, spec: WorkloadSpec, n_iterations: Optional[int] = None
    ) -> List[RequestTicket]:
        """Queue a workload's iteration sequence; per-tenant FIFO ordering
        guarantees the iterations execute in the submitted order."""
        iterations = spec.iterations if n_iterations is None else spec.iterations[:n_iterations]
        return [
            self.submit(
                build=iteration.build,
                description=iteration.description,
                change_category=iteration.category,
            )
            for iteration in iterations
        ]

    def run_workload(
        self, spec: WorkloadSpec, n_iterations: Optional[int] = None, timeout: Optional[float] = None
    ) -> List[SessionRunResult]:
        """Replay a workload end to end, returning every iteration's result."""
        return [ticket.value(timeout) for ticket in self.submit_workload(spec, n_iterations)]
