"""Synthetic Census (UCI Adult) dataset generator.

The paper's Census application predicts whether income exceeds $50K from
demographic attributes [Lichman 2013].  The real dataset cannot be downloaded
offline, so this module generates records with the Adult schema and a planted,
noisy income rule over education, age, occupation, hours-per-week and
capital-gain — the same covariate structure the real task exposes, so feature
engineering iterations (bucketizing age, interacting education with
occupation) genuinely change model quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.dataflow.collection import DataCollection, Dataset, Schema

#: Field order of the generated records (a subset of the UCI Adult schema).
CENSUS_FIELDS = [
    "age",
    "workclass",
    "education",
    "education_num",
    "marital_status",
    "occupation",
    "race",
    "sex",
    "capital_gain",
    "capital_loss",
    "hours_per_week",
    "native_country",
    "target",
]

WORKCLASSES = ["Private", "Self-emp", "Federal-gov", "State-gov", "Local-gov"]
EDUCATIONS: List[Tuple[str, int]] = [
    ("HS-grad", 9),
    ("Some-college", 10),
    ("Assoc", 11),
    ("Bachelors", 13),
    ("Masters", 14),
    ("Doctorate", 16),
]
MARITAL_STATUSES = ["Married", "Never-married", "Divorced", "Widowed", "Separated"]
OCCUPATIONS = [
    "Tech-support", "Craft-repair", "Sales", "Exec-managerial", "Prof-specialty",
    "Handlers-cleaners", "Machine-op-inspct", "Adm-clerical", "Farming-fishing",
    "Transport-moving", "Protective-serv", "Other-service",
]
#: Occupations that carry a positive income bump in the planted rule.
HIGH_INCOME_OCCUPATIONS = {"Exec-managerial", "Prof-specialty", "Tech-support", "Sales"}
RACES = ["White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other"]
SEXES = ["Male", "Female"]
COUNTRIES = ["United-States", "Mexico", "Philippines", "Germany", "Canada", "India", "England"]


@dataclass(frozen=True)
class CensusConfig:
    """Size and noise controls for the synthetic Census generator."""

    n_train: int = 2000
    n_test: int = 500
    seed: int = 7
    label_noise: float = 0.05


def census_schema() -> Schema:
    """Schema of the generated records with numeric converters."""
    return Schema(
        CENSUS_FIELDS,
        {
            "age": int,
            "education_num": int,
            "capital_gain": int,
            "capital_loss": int,
            "hours_per_week": int,
            "target": int,
        },
    )


def _generate_record(rng: np.random.Generator, label_noise: float) -> Dict[str, object]:
    age = int(rng.integers(17, 80))
    workclass = WORKCLASSES[rng.integers(len(WORKCLASSES))]
    education, education_num = EDUCATIONS[rng.integers(len(EDUCATIONS))]
    marital_status = MARITAL_STATUSES[rng.integers(len(MARITAL_STATUSES))]
    occupation = OCCUPATIONS[rng.integers(len(OCCUPATIONS))]
    race = RACES[rng.integers(len(RACES))]
    sex = SEXES[rng.integers(len(SEXES))]
    capital_gain = int(rng.choice([0, 0, 0, 0, 2000, 5000, 15000], p=[0.55, 0.15, 0.1, 0.05, 0.06, 0.05, 0.04]))
    capital_loss = int(rng.choice([0, 0, 0, 1500, 2500], p=[0.7, 0.12, 0.08, 0.06, 0.04]))
    hours_per_week = int(np.clip(rng.normal(41, 11), 10, 90))

    # Planted income rule: a logistic score over the informative covariates.
    score = (
        0.35 * (education_num - 10)
        + 0.045 * (age - 38)
        + 0.03 * (hours_per_week - 40)
        + (1.2 if occupation in HIGH_INCOME_OCCUPATIONS else -0.4)
        + (0.8 if marital_status == "Married" else -0.3)
        + 0.00012 * capital_gain
        - 0.0003 * capital_loss
        - 1.0
    )
    probability = 1.0 / (1.0 + np.exp(-score))
    label = int(rng.random() < probability)
    if rng.random() < label_noise:
        label = 1 - label

    return {
        "age": age,
        "workclass": workclass,
        "education": education,
        "education_num": education_num,
        "marital_status": marital_status,
        "occupation": occupation,
        "race": race,
        "sex": sex,
        "capital_gain": capital_gain,
        "capital_loss": capital_loss,
        "hours_per_week": hours_per_week,
        "native_country": COUNTRIES[rng.integers(len(COUNTRIES))],
        "target": label,
    }


def generate_census_dataset(config: CensusConfig = CensusConfig()) -> Dataset:
    """Generate a seeded train/test :class:`~repro.dataflow.collection.Dataset`."""
    rng = np.random.default_rng(config.seed)
    schema = census_schema()
    train = [_generate_record(rng, config.label_noise) for _ in range(config.n_train)]
    test = [_generate_record(rng, config.label_noise) for _ in range(config.n_test)]
    return Dataset(
        train=DataCollection(train, schema=schema, name="census.train"),
        test=DataCollection(test, schema=schema, name="census.test"),
        name="census",
    )


def write_census_csv(path_train: str, path_test: str, config: CensusConfig = CensusConfig()) -> None:
    """Write the synthetic dataset to two headerless CSV files (for the DSL's FileSource)."""
    dataset = generate_census_dataset(config)
    dataset.train.to_csv(path_train)
    dataset.test.to_csv(path_test)
