"""Synthetic dataset generators.

The paper evaluates on the UCI Adult ("Census") dataset and on a news corpus
for person-mention extraction; neither is downloadable in this offline
environment, so this package generates seeded synthetic equivalents with the
same schemas and the same learning-task structure (see DESIGN.md §1 for the
substitution rationale).
"""

from repro.datagen.census import CENSUS_FIELDS, CensusConfig, generate_census_dataset
from repro.datagen.names import FIRST_NAMES, LAST_NAMES
from repro.datagen.news import NewsConfig, generate_news_dataset

__all__ = [
    "CENSUS_FIELDS",
    "CensusConfig",
    "generate_census_dataset",
    "NewsConfig",
    "generate_news_dataset",
    "FIRST_NAMES",
    "LAST_NAMES",
]
