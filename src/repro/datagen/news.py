"""Synthetic news-article generator with gold person-mention annotations.

The IE application in the paper extracts person mentions from news articles —
a structured-prediction task over unstructured text.  This generator composes
articles from templated sentences that embed person names (with or without
honorifics), organizations, and cities, and records character-free gold
annotations as token-level BIO tags so that the pipeline (tokenize → feature
extraction → sequence learner → span evaluation) is exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.dataflow.collection import DataCollection, Dataset, Schema
from repro.datagen.names import (
    CITIES,
    FILLER_SENTENCES,
    FIRST_NAMES,
    HONORIFIC_TITLES,
    LAST_NAMES,
    ORGANIZATIONS,
    TOPICS,
    VERBS,
)

NEWS_FIELDS = ["doc_id", "text", "gold_mentions"]


@dataclass(frozen=True)
class NewsConfig:
    """Size controls for the synthetic news corpus."""

    n_train_docs: int = 120
    n_test_docs: int = 40
    sentences_per_doc: int = 6
    seed: int = 13


def news_schema() -> Schema:
    """Schema of generated documents; ``gold_mentions`` is a ``;``-separated list."""
    return Schema(NEWS_FIELDS, {})


def _person(rng: np.random.Generator) -> Tuple[str, str]:
    """Return (surface form, canonical 'First Last') for a sampled person."""
    first = FIRST_NAMES[rng.integers(len(FIRST_NAMES))]
    last = LAST_NAMES[rng.integers(len(LAST_NAMES))]
    canonical = f"{first} {last}"
    roll = rng.random()
    if roll < 0.35:
        title = HONORIFIC_TITLES[rng.integers(len(HONORIFIC_TITLES))]
        return f"{title} {canonical}", canonical
    if roll < 0.5:
        return last, last
    return canonical, canonical


def _mention_sentence(rng: np.random.Generator, mentions: List[str]) -> str:
    surface, canonical = _person(rng)
    mentions.append(canonical)
    verb = VERBS[rng.integers(len(VERBS))]
    topic = TOPICS[rng.integers(len(TOPICS))]
    template = rng.integers(4)
    if template == 0:
        city = CITIES[rng.integers(len(CITIES))]
        return f"{surface} {verb} {topic} in {city}."
    if template == 1:
        org = ORGANIZATIONS[rng.integers(len(ORGANIZATIONS))]
        return f"Speaking for {org}, {surface} {verb} {topic}."
    if template == 2:
        other_surface, other_canonical = _person(rng)
        mentions.append(other_canonical)
        return f"{surface} and {other_surface} {verb} {topic} on Tuesday."
    return f"According to {surface}, the plan {verb} {topic}."


def _generate_document(rng: np.random.Generator, doc_id: str, sentences_per_doc: int) -> Dict[str, str]:
    mentions: List[str] = []
    sentences: List[str] = []
    for _ in range(sentences_per_doc):
        if rng.random() < 0.65:
            sentences.append(_mention_sentence(rng, mentions))
        else:
            sentences.append(FILLER_SENTENCES[rng.integers(len(FILLER_SENTENCES))])
    return {
        "doc_id": doc_id,
        "text": " ".join(sentences),
        "gold_mentions": ";".join(mentions),
    }


def generate_news_dataset(config: NewsConfig = NewsConfig()) -> Dataset:
    """Generate a seeded train/test corpus of annotated news documents."""
    rng = np.random.default_rng(config.seed)
    schema = news_schema()
    train = [
        _generate_document(rng, f"train-{index:04d}", config.sentences_per_doc)
        for index in range(config.n_train_docs)
    ]
    test = [
        _generate_document(rng, f"test-{index:04d}", config.sentences_per_doc)
        for index in range(config.n_test_docs)
    ]
    return Dataset(
        train=DataCollection(train, schema=schema, name="news.train"),
        test=DataCollection(test, schema=schema, name="news.test"),
        name="news",
    )


def gold_bio_tags(tokens: List[str], gold_mentions: List[str]) -> List[str]:
    """Project canonical person names onto a token sequence as BIO tags.

    A mention matches wherever its tokens appear contiguously; honorifics are
    not part of the canonical form and therefore stay tagged ``O``.
    """
    tags = ["O"] * len(tokens)
    mention_token_lists = [mention.split() for mention in gold_mentions if mention]
    for mention_tokens in mention_token_lists:
        width = len(mention_tokens)
        if width == 0:
            continue
        for start in range(0, len(tokens) - width + 1):
            if tokens[start : start + width] == mention_tokens:
                tags[start] = "B-PER"
                for offset in range(1, width):
                    tags[start + offset] = "I-PER"
    return tags
