"""Name, place, and organization vocabularies for the synthetic news corpus."""

from __future__ import annotations

FIRST_NAMES = [
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda",
    "David", "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph", "Jessica",
    "Thomas", "Sarah", "Charles", "Karen", "Christopher", "Lisa", "Daniel", "Nancy",
    "Matthew", "Betty", "Anthony", "Margaret", "Mark", "Sandra", "Donald", "Ashley",
    "Steven", "Kimberly", "Paul", "Emily", "Andrew", "Donna", "Joshua", "Michelle",
    "Kenneth", "Carol", "Kevin", "Amanda", "Brian", "Dorothy", "George", "Melissa",
    "Timothy", "Deborah", "Ronald", "Stephanie", "Edward", "Rebecca", "Jason", "Sharon",
    "Jeffrey", "Laura", "Ryan", "Cynthia", "Jacob", "Kathleen", "Gary", "Amy",
]

LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
    "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson", "Thomas",
    "Taylor", "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson", "White",
    "Harris", "Sanchez", "Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young",
    "Allen", "King", "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores",
    "Green", "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz", "Parker",
]

HONORIFIC_TITLES = ["Mr.", "Mrs.", "Ms.", "Dr.", "Prof.", "Senator", "Gov.", "President", "Judge"]

CITIES = [
    "Chicago", "Springfield", "Urbana", "Boston", "Seattle", "Denver", "Austin",
    "Portland", "Atlanta", "Phoenix", "Madison", "Columbus", "Raleigh", "Omaha",
]

ORGANIZATIONS = [
    "Acme Corporation", "Globex", "Initech", "Umbrella Group", "Stark Industries",
    "Wayne Enterprises", "Hooli", "Vandelay Industries", "Wonka Labs", "Cyberdyne Systems",
]

TOPICS = [
    "the city budget", "a new transit plan", "the quarterly earnings report",
    "an upcoming election", "the trade agreement", "a research breakthrough",
    "the housing initiative", "a labor dispute", "the energy policy", "a charity gala",
]

VERBS = [
    "announced", "criticized", "praised", "discussed", "unveiled", "questioned",
    "defended", "proposed", "rejected", "endorsed",
]

FILLER_SENTENCES = [
    "Markets reacted calmly to the news.",
    "The committee will reconvene next week.",
    "Analysts expect further developments soon.",
    "Local residents expressed mixed opinions.",
    "The report was released late on Friday.",
    "Officials declined to comment further.",
    "The measure passed by a narrow margin.",
    "Several details remain under review.",
]
