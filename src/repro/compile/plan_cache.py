"""Plan caching: skip recompilation when only parameters changed.

Every iteration of the paper's loop re-submits a workflow that differs from
the previous one in a handful of operator parameters — yet the baseline
session recompiles it from scratch: re-validate the DSL program, rebuild the
DAG, re-hash every signature, re-slice to the outputs, and re-classify every
node's partition mode.  All of that except the signature hashes is a pure
function of the workflow's *structure* (node names, operator types, UDF
sources, dependency edges, declared outputs), which iteration edits almost
never touch.

:class:`PlanCache` keys compiled plans two ways:

* an **exact** key over structure *and* per-node parameters — a hit returns
  the previously compiled (and sliced) plan as-is, signatures included;
* a **structural** key over structure alone — a hit grafts the new operator
  instances onto the cached sliced DAG shape
  (:meth:`~repro.graph.dag.Dag.map_payloads`) and recomputes only the
  signature hashes, skipping validation and slicing.

Either way the resulting :class:`~repro.compiler.codegen.CompiledWorkflow`
is equal to what a from-scratch compile would produce — same nodes, same
edges, same signatures, same outputs — which
``tests/test_compiled_differential.py`` proves by fuzzing generated
workflows through both paths.  Partition-mode classifications are cached per
structural key as well (:meth:`PlanCache.partition_modes`), so a cached plan
reaches the scheduler with its partition plan precomputed.

Caches are per-session instances (sessions never share one), so cached plans
can never leak operator instances across tenants.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.compiler.codegen import CompiledWorkflow, compile_workflow, node_signature
from repro.compiler.slicing import slice_to_outputs
from repro.dsl.workflow import Workflow
from repro.obs.registry import get_registry
from repro.partition.planner import PartitionMode, PartitionPlanner

__all__ = ["PlanCache"]


def _canonical(payload: Any) -> Optional[str]:
    """Deterministic JSON rendering, or ``None`` when not serializable."""
    try:
        return json.dumps(payload, sort_keys=True, default=str)
    except (TypeError, ValueError):
        return None


class PlanCache:
    """Per-session cache of compiled (and sliced) workflow plans.

    ``compile_sliced`` replaces the session's
    ``slice_to_outputs(compile_workflow(workflow))`` pipeline; the outcome of
    the most recent call is exposed as :attr:`last_result` (``"exact"``,
    ``"structural"``, or ``"miss"``) and counted as
    ``repro_plan_cache_requests_total{result=...}``.
    """

    def __init__(self, registry=None, capacity: int = 32) -> None:
        self._registry = registry
        self.capacity = max(1, int(capacity))
        self._exact: "OrderedDict[str, CompiledWorkflow]" = OrderedDict()
        self._structural: "OrderedDict[str, CompiledWorkflow]" = OrderedDict()
        self._modes: Dict[str, Dict[str, PartitionMode]] = {}
        self.last_result: str = "miss"

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Cached-entry counts (observability / tests)."""
        return {
            "exact_entries": len(self._exact),
            "structural_entries": len(self._structural),
            "mode_entries": len(self._modes),
        }

    # ------------------------------------------------------------------
    def compile_sliced(self, workflow: Workflow) -> CompiledWorkflow:
        """The sliced compiled plan for ``workflow``, from cache when possible."""
        keys = self._keys(workflow)
        if keys is None:
            # Unserializable structure/params: never cacheable, always compile.
            return self._record("miss", None, self._compile(workflow))
        structural_key, exact_key = keys
        cached = self._exact.get(exact_key)
        if cached is not None:
            self._exact.move_to_end(exact_key)
            return self._record("exact", structural_key, cached)
        shape = self._structural.get(structural_key)
        if shape is not None:
            self._structural.move_to_end(structural_key)
            compiled = self._regraft(shape, workflow)
            if compiled is not None:
                self._remember(self._exact, exact_key, compiled)
                return self._record("structural", structural_key, compiled)
        compiled = self._compile(workflow)
        self._remember(self._exact, exact_key, compiled)
        self._remember(self._structural, structural_key, compiled)
        return self._record("miss", structural_key, compiled)

    def partition_modes(
        self, compiled: CompiledWorkflow, planner: PartitionPlanner
    ) -> Dict[str, PartitionMode]:
        """Node → partition mode for a plan from :meth:`compile_sliced`.

        Cached per structural key: classification depends only on operator
        types and class-level hints, so a parameter-only iteration reuses the
        previous partition plan outright.  Plans containing instance-hinted
        operators (a ``partition_mode`` or ``partition_combiner`` attribute
        set on the *instance*) are classified fresh every time — instance
        hints are invisible to the structural key.
        """
        key = getattr(compiled, "plan_cache_key", None)
        # Hint check comes *before* the cache lookup: instance hints don't
        # participate in the structural key, so a hinted plan must neither be
        # served a cached (unhinted) classification nor pollute the cache.
        instance_hinted = any(
            "partition_mode" in getattr(compiled.operator(name), "__dict__", {})
            or "partition_combiner" in getattr(compiled.operator(name), "__dict__", {})
            for name in compiled.nodes()
        )
        if key is not None and not instance_hinted:
            cached = self._modes.get(key)
            if cached is not None:
                return dict(cached)
        modes = {
            name: planner.mode_for(compiled.operator(name)) for name in compiled.nodes()
        }
        if key is not None and not instance_hinted:
            if len(self._modes) >= self.capacity:
                self._modes.pop(next(iter(self._modes)))
            self._modes[key] = dict(modes)
        return modes

    # ------------------------------------------------------------------
    def _keys(self, workflow: Workflow) -> Optional[Tuple[str, str]]:
        """(structural, exact) cache keys, or ``None`` when unserializable."""
        nodes = []
        params = []
        try:
            categories = {
                name: getattr(category, "value", str(category))
                for name, category in workflow.categories().items()
            }
            for name, operator in workflow:
                nodes.append(
                    {
                        "name": name,
                        "op": type(operator).__name__,
                        "udfs": operator.udf_sources(),
                        "deps": list(operator.dependencies()),
                        "category": categories.get(name, ""),
                    }
                )
                params.append({"name": name, "params": operator.params()})
            structure = {
                "workflow": workflow.name,
                "outputs": list(workflow.outputs()),
                "nodes": nodes,
            }
        except Exception:
            return None
        structural = _canonical(structure)
        exact_params = _canonical(params)
        if structural is None or exact_params is None:
            return None
        return structural, structural + "\x00" + exact_params

    def _compile(self, workflow: Workflow) -> CompiledWorkflow:
        return slice_to_outputs(compile_workflow(workflow))

    def _regraft(
        self, shape: CompiledWorkflow, workflow: Workflow
    ) -> Optional[CompiledWorkflow]:
        """New operators on the cached sliced DAG shape; only signatures re-hash."""
        new_ops = {name: operator for name, operator in workflow}
        if any(name not in new_ops for name in shape.dag.nodes()):
            return None  # structural key collision paranoia; compile fresh
        dag = shape.dag.map_payloads(lambda name, _old: new_ops[name])
        signatures: Dict[str, str] = {}
        for name in dag.topological_order():
            operator = dag.payload(name)
            dependency_signatures = [signatures[parent] for parent in operator.dependencies()]
            signatures[name] = node_signature(operator, dependency_signatures)
        return CompiledWorkflow(
            workflow_name=shape.workflow_name,
            dag=dag,
            signatures=signatures,
            outputs=list(shape.outputs),
            categories=dict(shape.categories),
        )

    def _remember(self, cache: "OrderedDict[str, CompiledWorkflow]", key: str, value: CompiledWorkflow) -> None:
        cache[key] = value
        cache.move_to_end(key)
        while len(cache) > self.capacity:
            cache.popitem(last=False)

    def _record(
        self, result: str, structural_key: Optional[str], compiled: CompiledWorkflow
    ) -> CompiledWorkflow:
        self.last_result = result
        if structural_key is not None:
            # Lets partition_modes key its cache off the plan itself.
            compiled.plan_cache_key = structural_key
        registry = self._registry if self._registry is not None else get_registry()
        if registry.enabled:
            registry.counter(
                "repro_plan_cache_requests_total",
                help="Plan-cache lookups by outcome.",
                result=result,
            ).inc()
        return compiled
