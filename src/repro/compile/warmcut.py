"""Warm-started min-cut: reuse the previous iteration's flow across solves.

Iteration N+1 of the paper's loop solves a project-selection network whose
*structure* (items and prerequisite edges) is almost always identical to
iteration N's — only a few terminal-edge capacities move, because only a few
node costs changed.  Max-flow theory makes the previous flow reusable: any
feasible flow extends to a maximum flow by augmentation alone, so as long as
every rewritten capacity still covers the flow already routed through its
edge, continuing Dinic from the old flow pushes only the *additional* flow
the new capacities admit.  When a capacity drops below its routed flow the
excess is *drained* first
(:meth:`~repro.optimizer.maxflow.FlowNetwork.reduce_edge_flow` cancels it
along flow-carrying paths, leaving a smaller but valid flow), so shrinking
profits stay on the warm path too; only a failed drain — impossible on these
acyclic networks, but guarded anyway — falls back to a cold solve.

Exactness is preserved — not approximated.  The warm and cold paths compute
max flows of the same network, and the cut certificate both report is the
*source-minimal* minimum cut (residual reachability from the source), which
is unique for any maximum flow.  So the warm solver's cut value, selected
set, and cut-edge list are equal to a cold re-solve's, bit for bit; the
differential suite replays every warm solve cold to prove it.

The one structural liberty: the retained network carries *both* terminal
edges per item (``source → item`` at ``max(p, 0)`` and ``item → sink`` at
``max(-p, 0)``) so a profit crossing zero between iterations is a capacity
rewrite, not a structure change.  Zero-capacity edges never carry flow and
never affect residual reachability, and the cut-edge report filters them
out, keeping the certificate identical to the cold network's (which only
materializes the non-zero edge).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.obs.registry import get_registry
from repro.optimizer.maxflow import FlowNetwork
from repro.optimizer.project_selection import (
    SINK,
    SOURCE,
    ProjectSelectionInstance,
    ProjectSelectionSolution,
)

__all__ = ["WarmCutSolver"]

_SOURCE = 0
_SINK = 1


class WarmCutSolver:
    """A drop-in for :func:`~repro.optimizer.project_selection.solve_project_selection`
    that warm-starts structurally identical successive solves.

    Call it like the function it replaces::

        solver = WarmCutSolver()
        solution = solver(instance)          # cold: builds the network
        solution = solver(next_instance)     # warm if only profits moved

    Three per-solve modes, counted as
    ``repro_optimizer_warm_solves_total{mode=...}``:

    ``cold``
        No retained network, or the item list / prerequisite list changed:
        build a fresh network and solve from zero flow.
    ``warm``
        Structure matches: rewrite capacities in place — draining routed flow
        off any edge whose capacity shrank below it — and continue Dinic from
        the previous flow.
    ``fallback``
        Structure matches but a drain could not unwind the routed flow
        (cycle-trapped flow; unreachable on these acyclic networks):
        rebuild cold.  Correctness never depends on warm succeeding.
    """

    def __init__(self, registry=None) -> None:
        self._registry = registry
        self._network: Optional[FlowNetwork] = None
        #: Structure of the retained network: items in insertion order plus
        #: the prerequisite list, both order-sensitive (ids depend on order).
        self._structure: Optional[Tuple[Tuple[Hashable, ...], Tuple[Tuple[Hashable, Hashable], ...]]] = None
        self._items: List[Hashable] = []
        #: item → (source-edge id, sink-edge id) in the retained network.
        self._terminal_edges: Dict[Hashable, Tuple[int, int]] = {}
        self._prereq_edges: List[int] = []
        #: Prerequisite-edge capacity, kept monotone across warm rewrites: any
        #: finite value above the sum of absolute profits works, so growing it
        #: but never shrinking it means prerequisite rewrites cannot fail.
        self._retained_infinite: float = 0.0
        #: How the last solve ran: "cold" | "warm" | "fallback" (observability).
        self.last_mode: str = "cold"
        #: Edges drained by the last warm solve (observability).
        self.last_drains: int = 0

    # ------------------------------------------------------------------
    def __call__(self, instance: ProjectSelectionInstance) -> ProjectSelectionSolution:
        instance.validate()
        structure = (tuple(instance.profits), tuple(instance.prerequisites))
        if self._structure != structure or self._network is None:
            mode = "cold"
            self._build(instance, structure)
        elif self._rewrite_capacities(instance):
            mode = "warm"
        else:
            mode = "fallback"
            self._build(instance, structure)
        self.last_mode = mode
        registry = self._registry if self._registry is not None else get_registry()
        if registry.enabled:
            registry.counter(
                "repro_optimizer_warm_solves_total",
                help="Project-selection solves by warm-start outcome.",
                mode=mode,
            ).inc()
        return self._solve(instance)

    # ------------------------------------------------------------------
    def _build(self, instance: ProjectSelectionInstance, structure) -> None:
        network = FlowNetwork(len(instance.profits) + 2)
        index = {item: position + 2 for position, item in enumerate(instance.profits)}
        self._terminal_edges = {}
        for item, profit in instance.profits.items():
            source_edge = network.add_edge(_SOURCE, index[item], max(profit, 0.0))
            sink_edge = network.add_edge(index[item], _SINK, max(-profit, 0.0))
            self._terminal_edges[item] = (source_edge, sink_edge)
        infinite = self._infinite(instance)
        self._prereq_edges = [
            network.add_edge(index[item], index[requires], infinite)
            for item, requires in instance.prerequisites
        ]
        self._network = network
        self._structure = structure
        self._items = list(instance.profits)
        self._retained_infinite = infinite

    @staticmethod
    def _infinite(instance: ProjectSelectionInstance) -> float:
        # Mirrors solve_project_selection: any finite value strictly above the
        # sum of absolute profits can never sit in a minimum cut.
        return sum(abs(p) for p in instance.profits.values()) + 1.0

    def _rewrite_capacities(self, instance: ProjectSelectionInstance) -> bool:
        """Apply the new profits to the retained network; False → fall back.

        Capacity increases are plain rewrites.  Decreases below the routed
        flow drain the excess first (:meth:`FlowNetwork.reduce_edge_flow`),
        so profit swings in either direction stay warm.  The prerequisite
        "infinity" is kept monotone — any value above the sum of absolute
        profits is equally valid, and never shrinking it means prerequisite
        edges can never need a drain (and they never appear in a cut, so the
        retained value is never reported).
        """
        network = self._network
        assert network is not None
        self._retained_infinite = max(self._retained_infinite, self._infinite(instance))
        self.last_drains = 0
        for edge_id in self._prereq_edges:
            if not network.set_edge_capacity(edge_id, self._retained_infinite):
                return False  # pragma: no cover - capacity only ever grows
        for item, profit in instance.profits.items():
            source_edge, sink_edge = self._terminal_edges[item]
            for edge_id, capacity in (
                (source_edge, max(profit, 0.0)),
                (sink_edge, max(-profit, 0.0)),
            ):
                if network.set_edge_capacity(edge_id, capacity):
                    continue
                # Drain the routed excess.  One pass can leave the flow an
                # ulp above the capacity (flow - (flow - cap) need not round
                # to cap); re-draining the measured residue is then exact
                # (Sterbenz: the operands are within a factor of two), so
                # this converges in at most a few attempts.
                for _attempt in range(4):
                    excess = network.edge_flow(edge_id) - capacity
                    if not network.reduce_edge_flow(edge_id, excess, _SOURCE, _SINK):
                        return False
                    if network.set_edge_capacity(edge_id, capacity):
                        break
                else:
                    return False  # pragma: no cover - Sterbenz convergence
                self.last_drains += 1
        return True

    # ------------------------------------------------------------------
    def _solve(self, instance: ProjectSelectionInstance) -> ProjectSelectionSolution:
        network = self._network
        assert network is not None
        network.max_flow(_SOURCE, _SINK)
        cut_value = network.flow_value(_SOURCE)
        reachable = network.min_cut_source_side(_SOURCE)
        index = {item: position + 2 for position, item in enumerate(self._items)}
        selected = {item for item in self._items if index[item] in reachable}
        positive_total = sum(p for p in instance.profits.values() if p > 0)
        labels = {_SOURCE: SOURCE, _SINK: SINK, **{position: item for item, position in index.items()}}
        cut_edges = [
            (labels[from_id], labels[to_id], capacity)
            for from_id, to_id, capacity in network.min_cut_edges(_SOURCE, reachable)
            if capacity != 0.0  # zero-cap twin edges don't exist in the cold network
        ]
        return ProjectSelectionSolution(
            selected=selected,
            profit=positive_total - cut_value,
            cut_value=cut_value,
            cut_edges=cut_edges,
        )
