"""Operator fusion: run a convex group of partition-wise operators as one task.

Under the wavefront scheduler every COMPUTE node costs a task dispatch, a
result fold, and (partitioned) a per-node chunk-input alignment pass.  For the
partition-wise data-prep chains that dominate the paper's workloads
(scan → featurize → label → assemble) those fixed costs are pure overhead:
each member is a row-wise function whose chunks flow straight into the next
member's chunks.  Fusion collapses such a group into a *single* compute task
— a "mini-scheduler" that replays the exact per-member split / broadcast /
merge semantics of the unfused path inside one function call, so values,
partitioned-vs-plain shapes, and therefore every downstream materialization
decision are bit-identical by construction (proven by
``tests/test_compiled_differential.py``).

Two layers:

* :func:`plan_fusion` — the static planner.  Groups are *convex* sets of
  eligible nodes (state COMPUTE, PARTITIONWISE mode, no reusable artifacts,
  no delta strategy) whose external parents are all *available* when the
  single fused task runs: in a wave strictly before the group's first wave,
  or — for a ``deferred`` group — sharing that wave with a value guaranteed
  folded before its finalize round.  Either way the group's inputs exist
  when the task is dispatched and cycles through external nodes are ruled
  out.
* :class:`FusedGroupTask` — the runtime.  A picklable callable the scheduler
  dispatches like any operator; it evaluates the members in topological
  order, chunk-aligning external inputs with the same type-directed protocol
  the scheduler uses (:mod:`repro.partition.chunks`), and falls back to a
  plain single evaluation per member exactly where the scheduler would.  The
  :class:`~repro.dsl.operators.DenseFeaturizer` member evaluation is
  vectorized: one batched NumPy matmul chain across all chunks (row-blocked
  GEMM is bit-stable, which the differential suite verifies empirically) and
  feature-dict emission with precomputed keys instead of per-cell f-strings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.dataflow.features import ExampleCollection, FeatureBlock, LabelBlock
from repro.dsl.operators import DenseFeaturizer, FeatureAssembler
from repro.errors import ExecutionError
from repro.graph.dag import NodeState
from repro.partition.chunks import (
    PartitionedValue,
    is_splittable,
    merge_value,
    shape_of_chunks,
    split_value,
)
from repro.partition.planner import PartitionMode

__all__ = ["FusedGroup", "FusedGroupOutput", "FusedGroupTask", "FusionPlan", "plan_fusion"]


@dataclass
class FusedGroup:
    """One fused group: members in topological order, dispatched as one task."""

    index: int
    members: List[str]
    head: str
    head_wave: int
    #: External parents (outside the group) in first-use order; the fused
    #: task's only inputs.
    external_parents: List[str] = field(default_factory=list)
    #: True when an external parent shares the head wave: the fused task is
    #: then dispatched in the head wave's *finalize* round — after the wave's
    #: regular results (including that parent's) have folded — instead of
    #: with the wave's regular tasks.
    deferred: bool = False

    @property
    def label(self) -> str:
        return self.head


@dataclass
class FusionPlan:
    """The fusion planner's verdict for one run."""

    groups: List[FusedGroup] = field(default_factory=list)
    #: member node name → its group (nodes outside any group are absent).
    member_of: Dict[str, FusedGroup] = field(default_factory=dict)

    def group_for(self, name: str) -> Optional[FusedGroup]:
        return self.member_of.get(name)

    def __bool__(self) -> bool:
        return bool(self.groups)


def plan_fusion(
    compiled: Any,
    states: Mapping[str, NodeState],
    costs: Mapping[str, Any],
    levels: Mapping[str, int],
    mode_for: Callable[[str, Any], PartitionMode],
    delta_plan: Optional[Any] = None,
) -> FusionPlan:
    """Partition the plan's eligible COMPUTE nodes into fused groups.

    A node is *eligible* when the fused task can own its execution without
    changing any observable of the unfused run:

    * state is COMPUTE (LOAD and PRUNE nodes never enter a task);
    * its partition mode is PARTITIONWISE (combiners, shuffles, and barrier
      nodes keep their specialized scheduler paths);
    * it has no reusable same-signature chunks in the store
      (``chunks_present == 0``) — partial-hit recovery must stay outside;
    * the incremental planner neither seeded it nor priced it as ``"delta"``.

    Eligible nodes merge greedily along dependency edges into convex groups;
    a merge is legal only while every external parent of every member is
    *available* when the single fused task runs in the group's first wave
    (``head_wave``): either the parent lives in a strictly earlier wave, or
    it shares the head wave but its value is guaranteed to have folded before
    the wave's finalize round (a LOAD node, or an unfusable PARTITIONWISE
    compute such as a partial-chunk-reuse node) — the group is then marked
    ``deferred`` and the scheduler dispatches its task in that finalize round.
    Groups that end up with one member are discarded — there is nothing to
    fuse.
    """
    dag = compiled.dag
    seeds = set(getattr(delta_plan, "seeds", None) or ())

    def eligible(name: str) -> bool:
        if states.get(name) is not NodeState.COMPUTE:
            return False
        if mode_for(name, compiled.operator(name)) is not PartitionMode.PARTITIONWISE:
            return False
        node_costs = costs.get(name)
        if node_costs is not None:
            if getattr(node_costs, "materialized", False):
                return False
            if getattr(node_costs, "chunks_present", 0) > 0:
                return False
            if getattr(node_costs, "delta_strategy", "") == "delta":
                return False
        return name not in seeds

    member_sets: Dict[int, Set[str]] = {}
    group_of: Dict[str, int] = {}
    next_index = 0

    def available_at_finalize(name: str) -> bool:
        """Can a head-wave external parent's value be relied on by the
        finalize round?  True for LOAD nodes (folded inline before any task
        dispatch) and for COMPUTE nodes that run as regular partition-wise
        tasks of the wave (folded before finalize).  Nodes already placed in
        a fused group are excluded — their own group might be deferred too,
        which would leave two fused tasks racing in one finalize round."""
        if name in group_of:
            return False
        state = states.get(name)
        if state is NodeState.LOAD:
            return True
        return (
            state is NodeState.COMPUTE
            and not eligible(name)
            and mode_for(name, compiled.operator(name)) is PartitionMode.PARTITIONWISE
        )

    def legal(members: Set[str]) -> bool:
        head_wave = min(levels[m] for m in members)
        for member in members:
            for parent in dag.parents(member):
                if parent in members or levels[parent] < head_wave:
                    continue
                if levels[parent] > head_wave:
                    return False
                if not available_at_finalize(parent):
                    return False
        return True

    for name in dag.topological_order():
        if not eligible(name):
            continue
        parent_groups = sorted({group_of[p] for p in dag.parents(name) if p in group_of})
        placed = False
        if parent_groups:
            # Try the union of all adjacent groups first, then each singly.
            candidates = [parent_groups] if len(parent_groups) == 1 else [parent_groups] + [
                [g] for g in parent_groups
            ]
            for groups_to_merge in candidates:
                merged = set().union(*(member_sets[g] for g in groups_to_merge)) | {name}
                if legal(merged):
                    target = groups_to_merge[0]
                    member_sets[target] = merged
                    for g in groups_to_merge[1:]:
                        del member_sets[g]
                    for member in merged:
                        group_of[member] = target
                    placed = True
                    break
        if not placed:
            member_sets[next_index] = {name}
            group_of[name] = next_index
            next_index += 1

    topo_position = {name: i for i, name in enumerate(dag.topological_order())}
    plan = FusionPlan()
    for raw_index in sorted(member_sets, key=lambda g: min(topo_position[m] for m in member_sets[g])):
        members = sorted(member_sets[raw_index], key=topo_position.get)
        if len(members) < 2:
            continue
        head_wave = min(levels[m] for m in members)
        head = min(
            (m for m in members if levels[m] == head_wave), key=topo_position.get
        )
        member_set = set(members)
        external: List[str] = []
        seen: Set[str] = set()
        for member in members:
            for parent in dag.parents(member):
                if parent not in member_set and parent not in seen:
                    seen.add(parent)
                    external.append(parent)
        group = FusedGroup(
            index=len(plan.groups),
            members=members,
            head=head,
            head_wave=head_wave,
            external_parents=external,
            deferred=any(levels[parent] == head_wave for parent in external),
        )
        plan.groups.append(group)
        for member in members:
            plan.member_of[member] = group
    return plan


# ----------------------------------------------------------------------
# Runtime: the fused task
# ----------------------------------------------------------------------
@dataclass
class FusedGroupOutput:
    """Per-member results of one fused task.

    ``values[name]`` is exactly what the unfused scheduler would have folded
    for that node: a :class:`~repro.partition.chunks.PartitionedValue` when
    the member ran partition-wise, a plain value when it fell back to a
    single evaluation.
    """

    values: Dict[str, Any] = field(default_factory=dict)
    times: Dict[str, float] = field(default_factory=dict)
    chunks_computed: Dict[str, int] = field(default_factory=dict)


class FusedGroupTask:
    """One compute task evaluating a whole fused group (picklable).

    ``inputs`` to :meth:`apply` is ``{"values": ..., "plain": ...,
    "merge_hooks": ...}`` — the group's external parents as the scheduler
    holds them (plain values or ``n_partitions``-chunk
    :class:`PartitionedValue`\\ s), any plain variants the scheduler had
    *already* coalesced (never computed eagerly just for the task), and the
    parent operators' ``merge_chunks`` hooks so the task can coalesce lazily
    exactly like the scheduler's ``_plain_value`` when a member needs a
    broadcast or a fallback evaluation.
    """

    def __init__(
        self,
        members: Sequence[Tuple[str, Any]],
        n_partitions: int,
        label: str = "",
    ) -> None:
        self.members = list(members)
        self.n_partitions = max(1, int(n_partitions))
        self.label = label or (self.members[0][0] if self.members else "fused")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FusedGroupTask({self.label!r}, members={[m for m, _ in self.members]})"

    def dependencies(self) -> List[str]:
        """External parents (scheduler parity hook; unused inside the task)."""
        internal = {name for name, _ in self.members}
        seen: List[str] = []
        for _name, operator in self.members:
            for parent in operator.dependencies():
                if parent not in internal and parent not in seen:
                    seen.append(parent)
        return seen

    # ------------------------------------------------------------------
    def apply(self, inputs: Dict[str, Any]) -> FusedGroupOutput:
        values: Dict[str, Any] = dict(inputs.get("values", {}))
        plain_cache: Dict[str, Any] = dict(inputs.get("plain", {}))
        merge_hooks: Dict[str, Any] = dict(inputs.get("merge_hooks", {}))
        for name, operator in self.members:
            hook = getattr(operator, "merge_chunks", None)
            if callable(hook):
                merge_hooks[name] = hook
        split_cache: Dict[str, List[Any]] = {}
        output = FusedGroupOutput()
        key_memo: Dict[Tuple[str, Tuple[str, ...]], Tuple[str, ...]] = {}

        def plain(name: str) -> Any:
            value = values[name]
            if not isinstance(value, PartitionedValue):
                return value
            if name not in plain_cache:
                merge = merge_hooks.get(name)
                plain_cache[name] = (
                    merge(value.chunks) if callable(merge) else merge_value(value.chunks)
                )
            return plain_cache[name]

        for name, operator in self.members:
            started = time.perf_counter()
            chunk_inputs = (
                self._chunk_inputs(operator, values, plain, split_cache)
                if self.n_partitions > 1
                else None
            )
            if chunk_inputs is None:
                # Fallback-to-single, exactly like the unfused scheduler: the
                # member runs once on coalesced inputs and stays plain.
                task_inputs = {parent: plain(parent) for parent in operator.dependencies()}
                values[name] = self._apply_member(operator, task_inputs)
                output.chunks_computed[name] = 0
            else:
                chunks = self._apply_chunks(operator, chunk_inputs, key_memo)
                values[name] = PartitionedValue(chunks)
                output.chunks_computed[name] = len(chunks)
            output.times[name] = time.perf_counter() - started
            output.values[name] = values[name]
        return output

    def _apply_member(self, operator: Any, task_inputs: Dict[str, Any]) -> Any:
        try:
            return operator.apply(task_inputs)
        except ExecutionError:
            raise
        except Exception as exc:
            raise ExecutionError(
                f"operator for fused node ({type(operator).__name__}) failed: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Chunk-input alignment — mirrors WavefrontScheduler._chunk_inputs so a
    # fused member sees exactly the per-chunk inputs the unfused path builds.
    # ------------------------------------------------------------------
    def _chunk_inputs(
        self,
        operator: Any,
        values: Dict[str, Any],
        plain: Callable[[str], Any],
        split_cache: Dict[str, List[Any]],
    ) -> Optional[List[Dict[str, Any]]]:
        n = self.n_partitions
        parents = operator.dependencies()
        chunked: Dict[str, List[Any]] = {}
        shape = None
        opaque = False
        for parent in parents:
            value = values[parent]
            if isinstance(value, PartitionedValue) and value.n_partitions == n:
                chunk_shape = shape_of_chunks(value.chunks)
                if chunk_shape is None:
                    opaque = True
                elif shape is None:
                    shape = chunk_shape
                elif shape != chunk_shape:
                    return None
                chunked[parent] = value.chunks
        for parent in parents:
            if parent in chunked:
                continue
            plain_value = plain(parent)
            if not is_splittable(plain_value):
                continue
            if opaque:
                return None
            if shape is None and parent in split_cache:
                chunked[parent] = split_cache[parent]
                continue
            parts = split_value(plain_value, n, shape=shape)
            if parts is None:
                return None
            if shape is None:
                split_cache[parent] = parts
            chunked[parent] = parts
        return [
            {
                parent: (chunked[parent][index] if parent in chunked else plain(parent))
                for parent in parents
            }
            for index in range(n)
        ]

    # ------------------------------------------------------------------
    # Member evaluation, with vectorized fast paths
    # ------------------------------------------------------------------
    def _apply_chunks(
        self,
        operator: Any,
        chunk_inputs: List[Dict[str, Any]],
        key_memo: Dict[Tuple[str, Tuple[str, ...]], Tuple[str, ...]],
    ) -> List[Any]:
        if type(operator) is DenseFeaturizer:
            fast = self._dense_chunks(operator, chunk_inputs)
            if fast is not None:
                return fast
        if type(operator) is FeatureAssembler:
            fast = self._assembler_chunks(operator, chunk_inputs, key_memo)
            if fast is not None:
                return fast
        return [self._apply_member(operator, inputs) for inputs in chunk_inputs]

    def _dense_chunks(
        self, operator: DenseFeaturizer, chunk_inputs: List[Dict[str, Any]]
    ) -> Optional[List[Any]]:
        """All chunks of a DenseFeaturizer in one batched matmul chain.

        Row-wise transforms over a row-blocked matrix equal the per-block
        results bit-for-bit (each output row is a function of its input row
        alone), so batching across chunks reproduces per-chunk ``apply``
        exactly while paying the NumPy dispatch overhead once instead of
        ``n_partitions`` times — and emitting feature dicts from precomputed
        key lists instead of formatting ``f"emb{j}"`` once per cell.
        """
        import numpy as np

        from repro.dataflow.collection import Dataset

        datasets = [inputs.get(operator.rows) for inputs in chunk_inputs]
        if any(not isinstance(dataset, Dataset) for dataset in datasets):
            return None
        projection, hidden = operator._weights()
        fields = operator.fields
        out = operator.out_features
        keys = [f"emb{j}" for j in range(out)]

        def embed_all(collections: List[Any]) -> List[List[Dict[str, float]]]:
            counts = [len(collection) for collection in collections]
            try:
                matrix = np.array(
                    [
                        [float(record[field]) for field in fields]
                        for collection in collections
                        for record in collection
                    ],
                    dtype=np.float64,
                ).reshape(sum(counts), len(fields))
            except (KeyError, TypeError, ValueError) as exc:
                raise ExecutionError(
                    f"operator for fused node (DenseFeaturizer) failed: {exc}"
                ) from exc
            state = np.tanh(matrix @ projection)
            for _ in range(operator.passes):
                state = np.tanh(state @ hidden)
            rows = [dict(zip(keys, row)) for row in state[:, :out].tolist()]
            per_chunk: List[List[Dict[str, float]]] = []
            start = 0
            for count in counts:
                per_chunk.append(rows[start:start + count])
                start += count
            return per_chunk

        trains = embed_all([dataset.train for dataset in datasets])
        tests = embed_all([dataset.test for dataset in datasets])
        name = f"dense{operator.embed_dim}"
        return [
            FeatureBlock(name=name, train=trains[i], test=tests[i])
            for i in range(len(datasets))
        ]

    def _assembler_chunks(
        self,
        operator: FeatureAssembler,
        chunk_inputs: List[Dict[str, Any]],
        key_memo: Dict[Tuple[str, Tuple[str, ...]], Tuple[str, ...]],
    ) -> Optional[List[Any]]:
        """FeatureAssembler chunks with per-key-tuple prefix memoization.

        ``merge_feature_blocks`` formats ``f"{block}.{key}"`` for every cell;
        feature rows of one block overwhelmingly share a key tuple (dense
        embeddings most of all), so the prefixed keys are computed once per
        distinct ``(block, keys)`` pair and reused across rows *and* chunks.
        Falls back to the real merge on any shape surprise so error behavior
        stays identical.
        """
        results: List[Any] = []
        for inputs in chunk_inputs:
            blocks = [inputs.get(name) for name in operator.extractors]
            labels = inputs.get(operator.label)
            if any(not isinstance(block, FeatureBlock) for block in blocks) or not isinstance(
                labels, LabelBlock
            ):
                return None
            n_train = len(blocks[0].train)
            n_test = len(blocks[0].test)
            if any(len(b.train) != n_train or len(b.test) != n_test for b in blocks):
                return None  # let the real merge raise its DataError
            merged_train: List[Dict[str, float]] = [{} for _ in range(n_train)]
            merged_test: List[Dict[str, float]] = [{} for _ in range(n_test)]
            for block in blocks:
                for target, rows in ((merged_train, block.train), (merged_test, block.test)):
                    for out_row, in_row in zip(target, rows):
                        raw_keys = tuple(in_row)
                        memo_key = (block.name, raw_keys)
                        prefixed = key_memo.get(memo_key)
                        if prefixed is None:
                            prefixed = tuple(f"{block.name}.{key}" for key in raw_keys)
                            key_memo[memo_key] = prefixed
                        out_row.update(zip(prefixed, in_row.values()))
            merged = FeatureBlock(
                name="+".join(b.name for b in blocks), train=merged_train, test=merged_test
            )
            try:
                results.append(ExampleCollection(features=merged, labels=labels, name="examples"))
            except Exception as exc:
                raise ExecutionError(
                    f"operator for fused node (FeatureAssembler) failed: {exc}"
                ) from exc
        return results
