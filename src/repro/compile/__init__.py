"""The compiled hot path: amortize per-iteration fixed costs across runs.

The paper's iterative workload re-optimizes and re-executes a workflow every
iteration, so once storage and scheduling are fast, three *fixed* costs start
to dominate: Python per-operator dispatch inside a wave, recompiling the plan
from scratch when only parameters changed, and a from-zero max-flow solve for
a network whose structure is identical to the previous iteration's.  This
package removes each of them, and every shortcut is proven bit-exact against
the uncompiled path by the differential suite in
``tests/test_compiled_differential.py``:

* :mod:`repro.compile.fusion` — collapse convex groups of partition-wise
  COMPUTE operators into one fused task per group (with a vectorized variant
  over the :class:`~repro.dsl.operators.DenseFeaturizer` numpy path);
* :mod:`repro.compile.plan_cache` — cache compiled plans and partition plans
  keyed by workflow signature, so iteration N+1 skips recompilation when only
  parameters changed;
* :mod:`repro.compile.warmcut` — warm-start the recomputation optimizer's
  min-cut from the previous iteration's flow, falling back to a cold solve
  when residual capacities go invalid.
"""

from repro.compile.fusion import FusedGroup, FusedGroupTask, FusionPlan, plan_fusion
from repro.compile.plan_cache import PlanCache
from repro.compile.warmcut import WarmCutSolver

__all__ = [
    "FusedGroup",
    "FusedGroupTask",
    "FusionPlan",
    "PlanCache",
    "WarmCutSolver",
    "plan_fusion",
]
