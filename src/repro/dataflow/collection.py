"""Record-oriented collections: schema, data collection, train/test dataset."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.errors import DataError


@dataclass(frozen=True)
class Schema:
    """Ordered field names with optional per-field type converters.

    ``types`` maps a field name to a callable (``int``, ``float``, ``str`` or a
    user function) applied when records are parsed from text.  Fields missing
    from ``types`` are kept as strings.
    """

    fields: Sequence[str]
    types: Dict[str, Callable[[str], Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = list(self.fields)
        if len(names) != len(set(names)):
            raise DataError(f"schema has duplicate fields: {names}")
        unknown = set(self.types) - set(names)
        if unknown:
            raise DataError(f"schema types refer to unknown fields: {sorted(unknown)}")
        # convert() runs once per record on the CSV-load and partition-exchange
        # hot paths; resolving each field's converter once here keeps the per-
        # record loop free of dict lookups.  (The dataclass is frozen, hence
        # object.__setattr__; the tuple is derived state, not a field.)
        object.__setattr__(
            self, "_converters", tuple((name, self.types.get(name)) for name in names)
        )

    def convert(self, record: Dict[str, str]) -> Dict[str, Any]:
        """Apply the type converters to a raw string record."""
        out: Dict[str, Any] = {}
        for name, converter in self._converters:
            if name not in record:
                raise DataError(f"record missing field {name!r}: {record}")
            value = record[name]
            if converter is None or value is None:
                out[name] = value
            else:
                try:
                    out[name] = converter(value)
                except (TypeError, ValueError) as exc:
                    raise DataError(f"cannot convert field {name!r}={value!r}: {exc}") from exc
        return out

    def __contains__(self, name: str) -> bool:
        return name in self.fields

    def __len__(self) -> int:
        return len(self.fields)


class DataCollection:
    """An ordered, immutable-by-convention collection of record dicts."""

    def __init__(self, records: Iterable[Dict[str, Any]], schema: Optional[Schema] = None, name: str = "data") -> None:
        self._records: List[Dict[str, Any]] = list(records)
        self.schema = schema
        self.name = name

    # -- basic protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._records)

    def __getitem__(self, index: int) -> Dict[str, Any]:
        return self._records[index]

    def records(self) -> List[Dict[str, Any]]:
        """The underlying record list (not copied; treat as read-only)."""
        return self._records

    # -- functional operators -------------------------------------------
    def map(self, fn: Callable[[Dict[str, Any]], Dict[str, Any]], name: Optional[str] = None) -> "DataCollection":
        """Return a new collection with ``fn`` applied to every record."""
        return DataCollection([fn(r) for r in self._records], schema=None, name=name or f"{self.name}.map")

    def filter(self, predicate: Callable[[Dict[str, Any]], bool], name: Optional[str] = None) -> "DataCollection":
        """Return a new collection keeping records where ``predicate`` holds."""
        return DataCollection(
            [r for r in self._records if predicate(r)], schema=self.schema, name=name or f"{self.name}.filter"
        )

    def select(self, fields: Sequence[str], name: Optional[str] = None) -> "DataCollection":
        """Project every record onto ``fields``."""
        missing = [f for f in fields if self._records and f not in self._records[0]]
        if missing:
            raise DataError(f"select refers to unknown fields: {missing}")
        return DataCollection(
            [{f: r[f] for f in fields} for r in self._records],
            schema=Schema(fields, {}),
            name=name or f"{self.name}.select",
        )

    def column(self, field_name: str) -> List[Any]:
        """Values of one field across all records."""
        try:
            return [r[field_name] for r in self._records]
        except KeyError as exc:
            raise DataError(f"unknown field {field_name!r} in collection {self.name!r}") from exc

    def head(self, n: int = 5) -> List[Dict[str, Any]]:
        """First ``n`` records (for inspection)."""
        return self._records[:n]

    # -- I/O --------------------------------------------------------------
    @classmethod
    def from_csv(cls, path: str, schema: Schema, delimiter: str = ",", name: str = "data") -> "DataCollection":
        """Parse a headerless CSV file using ``schema`` for field names/types."""
        with open(path, "r", newline="") as handle:
            return cls._from_reader(csv.reader(handle, delimiter=delimiter), schema, name)

    @classmethod
    def from_csv_text(cls, text: str, schema: Schema, delimiter: str = ",", name: str = "data") -> "DataCollection":
        """Parse headerless CSV content held in a string."""
        return cls._from_reader(csv.reader(io.StringIO(text), delimiter=delimiter), schema, name)

    @classmethod
    def _from_reader(cls, reader: Iterable[List[str]], schema: Schema, name: str) -> "DataCollection":
        records = []
        for line_number, row in enumerate(reader, start=1):
            if not row:
                continue
            if len(row) != len(schema):
                raise DataError(
                    f"line {line_number}: expected {len(schema)} fields, got {len(row)}"
                )
            raw = {field_name: value.strip() for field_name, value in zip(schema.fields, row)}
            records.append(schema.convert(raw))
        return cls(records, schema=schema, name=name)

    def to_csv(self, path: str, delimiter: str = ",") -> None:
        """Write the collection as headerless CSV in schema (or key) order."""
        fields = list(self.schema.fields) if self.schema else (list(self._records[0]) if self._records else [])
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle, delimiter=delimiter)
            for record in self._records:
                writer.writerow([record[f] for f in fields])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataCollection(name={self.name!r}, records={len(self)})"


@dataclass
class Dataset:
    """A train/test split, the unit produced by data-source operators."""

    train: DataCollection
    test: DataCollection
    name: str = "dataset"

    def splits(self) -> Dict[str, DataCollection]:
        """Mapping of split name to collection, in a fixed order."""
        return {"train": self.train, "test": self.test}

    def __len__(self) -> int:
        return len(self.train) + len(self.test)

    def map_splits(self, fn: Callable[[str, DataCollection], DataCollection], name: Optional[str] = None) -> "Dataset":
        """Apply ``fn(split_name, collection)`` to both splits."""
        return Dataset(train=fn("train", self.train), test=fn("test", self.test), name=name or self.name)
