"""Token-sequence data structures for the structured-prediction (IE) workload.

The information-extraction application in the paper identifies person mentions
in news articles: its examples are *sequences* of tokens with BIO tags rather
than flat records.  These types are the sequence counterparts of
:mod:`repro.dataflow.features`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import DataError

TokenFeatures = Dict[str, float]

#: BIO tags used by the person-mention extraction task.
BIO_TAGS = ("O", "B-PER", "I-PER")


@dataclass
class Sentence:
    """A tokenized sentence with optional gold BIO tags."""

    tokens: List[str]
    tags: Optional[List[str]] = None
    doc_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.tags is not None and len(self.tags) != len(self.tokens):
            raise DataError(
                f"sentence in doc {self.doc_id!r} has {len(self.tokens)} tokens but {len(self.tags)} tags"
            )

    def __len__(self) -> int:
        return len(self.tokens)


@dataclass
class SequenceCorpus:
    """Tokenized sentences for both splits (output of the tokenizer operator)."""

    name: str
    train: List[Sentence]
    test: List[Sentence]

    def split(self, split_name: str) -> List[Sentence]:
        if split_name == "train":
            return self.train
        if split_name == "test":
            return self.test
        raise DataError(f"unknown split {split_name!r}")

    def n_tokens(self) -> int:
        return sum(len(s) for s in self.train) + sum(len(s) for s in self.test)

    def __len__(self) -> int:
        return len(self.train) + len(self.test)


@dataclass
class SequenceFeatureBlock:
    """Per-token feature dicts, one list per sentence, per split."""

    name: str
    train: List[List[TokenFeatures]]
    test: List[List[TokenFeatures]]

    def split(self, split_name: str) -> List[List[TokenFeatures]]:
        if split_name == "train":
            return self.train
        if split_name == "test":
            return self.test
        raise DataError(f"unknown split {split_name!r}")

    def feature_names(self) -> List[str]:
        names = set()
        for sentences in (self.train, self.test):
            for sentence in sentences:
                for token_features in sentence:
                    names.update(token_features)
        return sorted(names)


def merge_sequence_blocks(blocks: Sequence[SequenceFeatureBlock]) -> SequenceFeatureBlock:
    """Merge aligned token-level blocks, namespacing keys by block name."""
    if not blocks:
        raise DataError("cannot merge an empty list of sequence feature blocks")

    def merge_split(split_name: str) -> List[List[TokenFeatures]]:
        reference = blocks[0].split(split_name)
        merged = [[dict() for _ in sentence] for sentence in reference]
        for block in blocks:
            sentences = block.split(split_name)
            if len(sentences) != len(reference):
                raise DataError(
                    f"sequence block {block.name!r} has {len(sentences)} sentences in "
                    f"{split_name!r}, expected {len(reference)}"
                )
            for merged_sentence, sentence in zip(merged, sentences):
                if len(sentence) != len(merged_sentence):
                    raise DataError(f"sequence block {block.name!r} has a token-length mismatch")
                for merged_token, token in zip(merged_sentence, sentence):
                    for key, value in token.items():
                        merged_token[f"{block.name}.{key}"] = value
        return merged

    return SequenceFeatureBlock(
        name="+".join(b.name for b in blocks), train=merge_split("train"), test=merge_split("test")
    )


@dataclass
class SequenceExampleSet:
    """Features plus gold tags: the input to a sequence learner."""

    features: SequenceFeatureBlock
    corpus: SequenceCorpus
    name: str = "sequence_examples"

    def __post_init__(self) -> None:
        for split_name in ("train", "test"):
            feats = self.features.split(split_name)
            sents = self.corpus.split(split_name)
            if len(feats) != len(sents):
                raise DataError(
                    f"{split_name!r} has {len(feats)} feature sentences but {len(sents)} corpus sentences"
                )

    def split(self, split_name: str) -> Tuple[List[List[TokenFeatures]], List[Sentence]]:
        return self.features.split(split_name), self.corpus.split(split_name)


@dataclass
class SequencePredictions:
    """Predicted tag sequences next to gold tag sequences, per split."""

    name: str
    train_predictions: List[List[str]]
    train_gold: List[List[str]]
    test_predictions: List[List[str]]
    test_gold: List[List[str]]
    scores: Dict[str, float] = field(default_factory=dict)

    def split(self, split_name: str) -> Tuple[List[List[str]], List[List[str]]]:
        if split_name == "train":
            return self.train_predictions, self.train_gold
        if split_name == "test":
            return self.test_predictions, self.test_gold
        raise DataError(f"unknown split {split_name!r}")
