"""Data structures flowing along workflow DAG edges.

Helix's DSL keeps features in a human-readable format during pre-processing
and converts them to a numeric format only when they reach a learner.  The
types in this package mirror that design:

* :class:`~repro.dataflow.collection.DataCollection` — an ordered collection of
  raw records (dicts) with an optional schema; the output of scanners.
* :class:`~repro.dataflow.collection.Dataset` — a train/test pair of
  ``DataCollection`` objects; the output of data sources.
* :class:`~repro.dataflow.features.FeatureBlock` — per-record dictionaries of
  named feature values produced by extractor operators.
* :class:`~repro.dataflow.features.ExampleCollection` — assembled (features,
  label) examples, the input of learners.
* :class:`~repro.dataflow.sequences.SequenceCorpus` and
  :class:`~repro.dataflow.sequences.SequenceFeatureBlock` — token-level
  equivalents used by the structured-prediction (information extraction)
  workload.
"""

from repro.dataflow.collection import DataCollection, Dataset, Schema
from repro.dataflow.features import ExampleCollection, FeatureBlock, PredictionSet
from repro.dataflow.sequences import SequenceCorpus, SequenceExampleSet, SequenceFeatureBlock, SequencePredictions, Sentence

__all__ = [
    "DataCollection",
    "Dataset",
    "Schema",
    "FeatureBlock",
    "ExampleCollection",
    "PredictionSet",
    "SequenceCorpus",
    "Sentence",
    "SequenceFeatureBlock",
    "SequenceExampleSet",
    "SequencePredictions",
]
