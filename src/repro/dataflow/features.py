"""Feature-level data structures for record (non-sequence) workflows.

Extractor operators produce :class:`FeatureBlock` objects: one dictionary of
named feature values per input record, kept separately for the train and test
splits so that downstream operators never mix them.  The feature assembler
merges several blocks with a label block into an :class:`ExampleCollection`,
which is what learners consume.  Predictor operators emit a
:class:`PredictionSet` carrying predictions next to gold labels for the
evaluation operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import DataError

FeatureDict = Dict[str, float]


def _require_same_length(kind: str, split: str, expected: int, actual: int) -> None:
    if expected != actual:
        raise DataError(f"{kind} for split {split!r} has {actual} rows, expected {expected}")


@dataclass
class FeatureBlock:
    """Per-record feature dictionaries for both splits.

    Attributes
    ----------
    name:
        The extractor (node) name that produced the block; used as a feature
        namespace when blocks are merged.
    train / test:
        One ``dict`` of feature name to numeric value per record, aligned with
        the originating :class:`~repro.dataflow.collection.Dataset` splits.
        Categorical extractors one-hot encode into keys such as
        ``"occupation=Sales"`` with value ``1.0``.
    """

    name: str
    train: List[FeatureDict]
    test: List[FeatureDict]

    def split(self, split_name: str) -> List[FeatureDict]:
        if split_name == "train":
            return self.train
        if split_name == "test":
            return self.test
        raise DataError(f"unknown split {split_name!r}")

    def feature_names(self) -> List[str]:
        """Sorted union of feature keys appearing in either split."""
        names = set()
        for rows in (self.train, self.test):
            for row in rows:
                names.update(row)
        return sorted(names)

    def map_values(self, fn: Callable[[str, float], float], name: Optional[str] = None) -> "FeatureBlock":
        """Apply ``fn(feature_name, value)`` to every feature value."""
        def apply(rows: List[FeatureDict]) -> List[FeatureDict]:
            return [{k: fn(k, v) for k, v in row.items()} for row in rows]

        return FeatureBlock(name=name or self.name, train=apply(self.train), test=apply(self.test))

    def __len__(self) -> int:
        return len(self.train) + len(self.test)


@dataclass
class LabelBlock:
    """Gold labels for both splits, aligned with the originating dataset."""

    name: str
    train: List[Any]
    test: List[Any]

    def split(self, split_name: str) -> List[Any]:
        if split_name == "train":
            return self.train
        if split_name == "test":
            return self.test
        raise DataError(f"unknown split {split_name!r}")


def merge_feature_blocks(blocks: Sequence[FeatureBlock], prefix_with_block_name: bool = True) -> FeatureBlock:
    """Merge several aligned blocks into one, namespacing keys by block name.

    All blocks must have the same number of rows in each split.  When
    ``prefix_with_block_name`` is true the merged feature keys become
    ``"<block>.<feature>"`` which keeps features human-readable and collision
    free, mirroring Helix's readable pre-processing format.
    """
    if not blocks:
        raise DataError("cannot merge an empty list of feature blocks")
    n_train = len(blocks[0].train)
    n_test = len(blocks[0].test)
    merged_train: List[FeatureDict] = [{} for _ in range(n_train)]
    merged_test: List[FeatureDict] = [{} for _ in range(n_test)]
    for block in blocks:
        _require_same_length("feature block " + block.name, "train", n_train, len(block.train))
        _require_same_length("feature block " + block.name, "test", n_test, len(block.test))
        for target, rows in ((merged_train, block.train), (merged_test, block.test)):
            for out_row, in_row in zip(target, rows):
                for key, value in in_row.items():
                    merged_key = f"{block.name}.{key}" if prefix_with_block_name else key
                    out_row[merged_key] = value
    return FeatureBlock(name="+".join(b.name for b in blocks), train=merged_train, test=merged_test)


@dataclass
class ExampleCollection:
    """Assembled learning examples: merged features plus labels per split."""

    features: FeatureBlock
    labels: LabelBlock
    name: str = "examples"

    def __post_init__(self) -> None:
        _require_same_length("labels", "train", len(self.features.train), len(self.labels.train))
        _require_same_length("labels", "test", len(self.features.test), len(self.labels.test))

    def split(self, split_name: str) -> Tuple[List[FeatureDict], List[Any]]:
        """(feature dicts, labels) for one split."""
        return self.features.split(split_name), self.labels.split(split_name)

    def feature_names(self) -> List[str]:
        return self.features.feature_names()

    def n_train(self) -> int:
        return len(self.features.train)

    def n_test(self) -> int:
        return len(self.features.test)


@dataclass
class PredictionSet:
    """Model outputs aligned with gold labels, per split."""

    name: str
    train_predictions: List[Any]
    train_labels: List[Any]
    test_predictions: List[Any]
    test_labels: List[Any]
    scores: Dict[str, float] = field(default_factory=dict)

    def split(self, split_name: str) -> Tuple[List[Any], List[Any]]:
        """(predictions, gold labels) for one split."""
        if split_name == "train":
            return self.train_predictions, self.train_labels
        if split_name == "test":
            return self.test_predictions, self.test_labels
        raise DataError(f"unknown split {split_name!r}")
