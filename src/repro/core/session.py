"""The HelixSession: end-to-end driver for iterative workflow development.

A session wires every layer of the reproduction together: it compiles a
:class:`~repro.dsl.workflow.Workflow` to an operator DAG, slices it to the
declared outputs, asks the recomputation optimizer for a
COMPUTE/LOAD/PRUNE state assignment, executes the resulting physical plan on
the wavefront scheduler, and records the iteration as a browsable version.
Artifacts, version records, and the measured cost database all persist in the
workspace directory, so reuse works across process restarts too.

Usage::

    from repro.core.session import HelixSession
    from repro.workloads.census_workload import CensusVariant, build_census_workflow

    session = HelixSession("/tmp/ws", backend="thread", parallelism=4)

    first = session.run(build_census_workflow(), description="initial")
    edited = build_census_workflow(CensusVariant(age_bins=8))   # an iteration edit
    second = session.run(edited, description="wider age buckets")
    assert second.report.reuse_fraction() > 0   # unchanged operators were reused
    print(second.report.total_runtime,          # cumulative node seconds
          second.report.wall_clock_runtime)     # true elapsed seconds
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.baselines.strategies import HELIX, ExecutionStrategy
from repro.compiler.change_tracker import ChangeTracker, WorkflowDiff, diff_workflows
from repro.compiler.codegen import CompiledWorkflow, compile_workflow
from repro.compiler.plan import PhysicalPlan
from repro.compiler.slicing import slice_to_outputs
from repro.core.trace_index import register_trace
from repro.core.workspace import resolve_trace_file, trace_directory, trace_path
from repro.dsl.operators import ChangeCategory
from repro.dsl.workflow import Workflow
from repro.execution.engine import ExecutionEngine, ExecutionResult
from repro.execution.scheduler import WorkerBackend, backend_by_name
from repro.execution.stats import IterationReport, RunHistory
from repro.execution.store import ArtifactStore
from repro.execution.simulator import RECOMPUTATION_POLICIES
from repro.graph.dag import NodeState
from repro.introspect.explain import ExplainRenderer
from repro.introspect.trace import RunTrace
from repro.obs.bridge import PeriodicRegistryFlush, install_periodic_flush
from repro.obs.events import (
    EventLog,
    NULL_EVENT_LOG,
    correlation_scope,
    current_correlation_id,
    events_path,
)
from repro.obs.registry import MetricsRegistry, get_registry, resolve_registry
from repro.optimizer.cost_model import CostDefaults, CostEstimator, NodeCosts
from repro.optimizer.recomputation import PlanExplanation, optimal_plan_explained, plan_cost
from repro.versioning.metrics_tracker import MetricsTracker
from repro.versioning.version_store import VersionStore, WorkflowVersion


@dataclass
class SessionRunResult:
    """Everything produced by one iteration."""

    version: WorkflowVersion
    plan: PhysicalPlan
    report: IterationReport
    outputs: Dict[str, Any] = field(default_factory=dict)
    diff: Optional[WorkflowDiff] = None
    #: The run's full decision record (``None`` only with ``trace_runs=False``).
    trace: Optional[RunTrace] = None

    @property
    def metrics(self) -> Dict[str, float]:
        return self.report.metrics

    @property
    def runtime(self) -> float:
        return self.report.total_runtime


class HelixSession:
    """An iterative development session over one workspace directory.

    Parameters
    ----------
    workspace:
        Directory for materialized artifacts (created if missing).  Re-opening
        a session on an existing workspace picks the artifact catalog back up,
        so reuse works across sessions too.
    strategy:
        Execution strategy; defaults to full HELIX.  Pass one of the baseline
        strategies (``DEEPDIVE``, ``KEYSTONEML``, ``HELIX_UNOPTIMIZED``) to run
        the comparison systems over the identical workflow.
    storage_budget:
        Maximum bytes of materialized intermediates (``None`` = unlimited).
    backend:
        Worker backend for the wavefront scheduler — ``"serial"`` (default),
        ``"thread"``, or ``"process"`` — or a ready-made
        :class:`~repro.execution.scheduler.WorkerBackend` instance.
    parallelism:
        Worker count for the ``thread``/``process`` backends (ignored by
        ``serial``); ``None`` means one worker per CPU.
    partitions:
        Intra-operator partition count (``None``/1 = off).  With N > 1 the
        wavefront scheduler splits collections into N chunks and runs each
        data-parallel operator once per chunk — the way to speed up *linear*
        pipelines, whose waves are too narrow for inter-node parallelism to
        help.  Partitioned outputs persist as chunked artifacts (one chunk
        per partition), and a later run that finds only some chunks in the
        store recomputes exactly the missing ones.
    store_backend:
        Where artifact bytes live — ``"disk"`` (legacy flat files, the
        default), ``"sharded"`` (fan-out subdirectories), ``"memory"``
        (ephemeral), or ``"tiered"`` (a capacity-bounded memory tier
        write-through over sharded disk; see :mod:`repro.storage`).
    memory_tier_mb:
        Memory-tier capacity in megabytes for the ``tiered`` backend.
        Setting it without ``store_backend`` implies ``"tiered"``.
    codec:
        Serialization policy for materialized artifacts: ``"auto"``
        (per-value by type and size — the default) or a specific codec id
        (``pickle``, ``pickle+zlib``, ``numpy-raw``, ``dense-block``).
        Reads always follow the codec recorded in the catalog.
    store:
        An already-constructed artifact store to use instead of the default
        workspace-private one.  This is how the multi-tenant workflow service
        points many sessions at one shared, quota-managed cache
        (:class:`~repro.service.cache.SharedArtifactCache` tenant views);
        ``storage_budget`` and the storage knobs above are ignored when a
        store is injected.
    materialization_wrapper:
        Optional hook applied to the strategy's materialization policy before
        each run — the service wraps the policy with cache admission control
        here.  Receives and returns a
        :class:`~repro.optimizer.materialization.MaterializationPolicy`.
    trace_runs:
        Record a :class:`~repro.introspect.trace.RunTrace` for every run and
        persist it as JSONL under ``<workspace>/traces/`` (on by default).
        The latest trace is available as :attr:`last_trace`; render it with
        :meth:`explain` or ``repro explain``.
    trace_owner:
        Identity stamped into every trace's ``tenant`` field — the workflow
        service sets this to the tenant name so multi-tenant traces stay
        attributed.
    incremental:
        Delta-driven incremental recomputation (``None`` = auto: on for
        chunked runs, i.e. ``partitions > 1``).  When active, inputs are
        fingerprinted chunk-by-chunk into the catalog's ``input_deltas``
        table; when an input's *data* changes between runs, clean chunks of
        downstream partition-wise nodes are served from the previous run's
        chunk artifacts and only dirty chunks recompute — the optimizer
        prices delta-vs-full per node (see :mod:`repro.incremental`).
        Requires a SQLite-catalog workspace and a strategy with
        cross-iteration reuse; ``False`` disables detection entirely and
        reproduces non-incremental behavior exactly.
    metrics:
        Runtime metrics destination (see :mod:`repro.obs`).  ``None``/``True``
        use the process-default :func:`~repro.obs.registry.get_registry`
        (inheriting an injected ``store``'s registry when one is provided),
        ``False`` disables metric recording for this session's layers, and a
        :class:`~repro.obs.registry.MetricsRegistry` instance routes
        everything — store, scheduler, catalog, optimizer, incremental
        planner — into that private registry.  The resolved registry is
        available as :attr:`metrics_registry`.
    events:
        Structured event journal destination (see :mod:`repro.obs.events`).
        ``None`` (default) journals to ``<workspace>/events.jsonl`` — or, for
        service-owned sessions over an injected ``store``, into the journal
        the service already attached to the shared registry.  ``False``
        disables journaling (implied by ``metrics=False``); an
        :class:`~repro.obs.events.EventLog` instance is used as-is.  The
        resolved log is available as :attr:`events`.
    obs_listen:
        ``"HOST:PORT"`` to serve this session's live observability plane
        (``/metrics``, ``/healthz``, ``/events``, …) over HTTP while the
        process runs — see :class:`~repro.obs.httpd.ObservabilityServer`.
        Port 0 binds an ephemeral port; the server is available as
        :attr:`obs_server` and shuts down with :meth:`close`.
    compiled:
        The compiled hot path (off by default; see :mod:`repro.compile`):
        cache compiled plans across iterations so parameter-only edits skip
        recompilation, warm-start the recomputation min-cut from the previous
        iteration's flow, and fuse convex chains of partition-wise COMPUTE
        operators into single tasks (partitioned runs).  Every shortcut is
        exact — results, metrics, reuse verdicts, and cut certificates are
        bit-identical to the uncompiled path (``docs/compiled.md``).
    """

    def __init__(
        self,
        workspace: str,
        strategy: ExecutionStrategy = HELIX,
        storage_budget: Optional[float] = None,
        cost_defaults: CostDefaults = CostDefaults(),
        backend: "str | WorkerBackend" = "serial",
        parallelism: Optional[int] = None,
        partitions: Optional[int] = None,
        store_backend: Optional[str] = None,
        memory_tier_mb: Optional[float] = None,
        codec: str = "auto",
        store: Optional[ArtifactStore] = None,
        materialization_wrapper: Optional[Callable[[Any], Any]] = None,
        trace_runs: bool = True,
        trace_owner: str = "",
        incremental: Optional[bool] = None,
        metrics: "None | bool | MetricsRegistry" = None,
        events: "None | bool | EventLog" = None,
        obs_listen: Optional[str] = None,
        compiled: bool = False,
    ) -> None:
        self.workspace = workspace
        self.strategy = strategy
        self.backend = backend if isinstance(backend, WorkerBackend) else backend_by_name(backend, parallelism)
        self.partitions = max(1, int(partitions)) if partitions else 1
        self.incremental = incremental
        self.compiled = bool(compiled)
        self.trace_runs = trace_runs
        self.trace_owner = trace_owner
        self.last_trace: Optional[RunTrace] = None
        if metrics is None and store is not None:
            # An injected store (shared service cache) already carries the
            # registry its owner wired in — inherit it so session- and
            # store-level series land in the same place.
            inherited = getattr(store, "metrics", None)
            self.metrics_registry = (
                inherited if isinstance(inherited, MetricsRegistry) else get_registry()
            )
        else:
            self.metrics_registry = resolve_registry(metrics)
        os.makedirs(workspace, exist_ok=True)
        if isinstance(events, EventLog):
            self.events = events
        elif events is False or not self.metrics_registry.enabled:
            # metrics=False means "observability off": the event log must be
            # off too, and the shared NULL_REGISTRY must never carry state.
            self.events = NULL_EVENT_LOG
        elif store is not None and getattr(self.metrics_registry, "event_log", None) is not None:
            # A service-owned session journals into the service's log (the
            # one already riding on the shared registry), not a private one.
            self.events = self.metrics_registry.event_log
        else:
            self.events = EventLog(events_path(workspace))
        if self.metrics_registry.enabled and self.events.enabled:
            self.metrics_registry.event_log = self.events
        if self.metrics_registry.enabled and store is None:
            # Long runs keep <workspace>/metrics.json fresh: the scheduler's
            # materializer loop ticks this hook every write, rate-limited to
            # one atomic rewrite per interval.  A flusher already installed
            # for an enclosing root (a service flushing <root>/metrics.json
            # while this session lives under <root>/tenants/...) keeps
            # precedence — the broader snapshot is the operational one.
            existing = self.metrics_registry.flush_hook
            enclosing = (
                isinstance(existing, PeriodicRegistryFlush)
                and os.path.abspath(workspace).startswith(
                    os.path.abspath(existing.workspace) + os.sep
                )
            )
            if not enclosing:
                install_periodic_flush(self.metrics_registry, workspace)
        self.obs_server = None
        if obs_listen:
            from repro.obs.httpd import ObservabilityServer

            self.obs_server = ObservabilityServer(
                obs_listen,
                registry=self.metrics_registry,
                events=self.events,
                health_checks={"session": lambda: (True, "session alive"),
                               "catalog": self._catalog_health},
            ).start()
        # Sizing a memory tier without naming a backend implies "tiered"
        # (the rule lives in backend_from_spec).
        self.store = store if store is not None else ArtifactStore(
            os.path.join(workspace, "artifacts"),
            budget_bytes=storage_budget,
            backend=store_backend,
            codec=codec,
            memory_tier_bytes=memory_tier_mb * 1024 * 1024 if memory_tier_mb is not None else None,
            metrics=self.metrics_registry,
        )
        self.materialization_wrapper = materialization_wrapper
        self.history = RunHistory()
        self.tracker = ChangeTracker()
        self.estimator = CostEstimator(cost_defaults)
        self._previous_compiled: Optional[CompiledWorkflow] = None
        # The compiled hot path's per-session state: the plan cache, the
        # warm-startable min-cut solver, and one partition planner shared
        # across runs (its type→mode memo then persists between iterations).
        self._plan_cache = None
        self._warm_solver = None
        if self.compiled:
            from repro.compile import PlanCache, WarmCutSolver

            self._plan_cache = PlanCache(registry=self.metrics_registry)
            self._warm_solver = WarmCutSolver(registry=self.metrics_registry)
        self._partition_planner = None
        if self.partitions > 1:
            from repro.partition.planner import PartitionPlanner

            self._partition_planner = PartitionPlanner(self.partitions)
        # Restore persisted state from previous sessions over this workspace:
        # version records (browsing/diffing) and the measured cost database.
        from repro.versioning.persistence import load_cost_history, load_version_store

        self.versions = load_version_store(workspace)
        for signature, record in load_cost_history(workspace).items():
            self.history.record(signature, record)
            self.tracker.observe_signature(signature)

    def _catalog_health(self) -> Tuple[bool, str]:
        """/healthz check: the store's catalog (when SQLite) must answer."""
        catalog_db = getattr(self.store, "catalog_db", None)
        if catalog_db is None:
            return True, "no sqlite catalog (nothing to probe)"
        catalog_db.ping()  # raises StorageError when closed/unreachable
        return True, "catalog answering"

    def close(self) -> None:
        """Shut down live observability (HTTP listener, journal handle).

        Safe to call on sessions that never started either; the workspace
        and its artifacts are untouched.
        """
        if self.obs_server is not None:
            self.obs_server.close()
            self.obs_server = None
        if self.events is not NULL_EVENT_LOG:
            self.events.close()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    @property
    def incremental_active(self) -> bool:
        """Whether delta detection engages for this session's runs."""
        if self.incremental is False:
            return False
        if self.partitions <= 1 or not self.strategy.cross_iteration_reuse:
            # Delta reuse is defined over chunked artifacts; without
            # partitioning (or with reuse forbidden) there is nothing to do.
            return False
        if self.incremental is None:
            return getattr(self.store, "catalog_db", None) is not None
        return True

    def _plan_deltas(self, compiled: CompiledWorkflow, iteration_index: int):
        """Fingerprint changed inputs and plan chunk reuse (None = inactive)."""
        if not self.incremental_active:
            return None
        from repro.errors import StorageError
        from repro.incremental.planner import DeltaPlanner

        planner = DeltaPlanner(self.partitions, metrics=self.metrics_registry)
        try:
            return planner.plan(
                compiled, self.store, run_iteration=iteration_index, recorded_at=time.time()
            )
        except StorageError:
            return None  # fingerprinting is advisory; run proceeds full

    def _estimate_costs(self, compiled: CompiledWorkflow, delta_plan=None) -> Dict[str, NodeCosts]:
        # Tier/codec signals are optional store surface (custom stores in
        # tests may implement only the primitive operations).
        codecs = getattr(self.store, "codecs_by_signature", None)
        resident = getattr(self.store, "memory_resident_signatures", None)
        costs = self.estimator.estimate(
            compiled,
            history=self.history.cost_records(),
            materialized_sizes=self.store.sizes_by_signature(),
            measured_load_costs=self.store.load_costs_by_signature(),
            chunk_inventory=self.store.chunk_inventory(),
            recoverable_partitions=self.partitions,
            codecs_by_signature=codecs() if callable(codecs) else None,
            memory_resident=resident() if callable(resident) else None,
            delta_hints=delta_plan.hints() if delta_plan is not None else None,
        )
        # Strategy restrictions: comparators that cannot reuse certain node
        # categories (or anything at all) simply see those nodes as
        # non-materialized — and without chunk families, so the scheduler's
        # partial-hit recovery cannot reuse state either — which forces the
        # planner to recompute them.
        for name in compiled.nodes():
            category = compiled.categories.get(name)
            category_value = getattr(category, "value", str(category))
            if not self.strategy.cross_iteration_reuse:
                costs[name].forget_reuse()
            elif category_value in self.strategy.always_recompute_categories:
                costs[name].forget_reuse()
        return costs

    def _record_delta_verdicts(self, costs: Dict[str, NodeCosts]) -> None:
        """Count the cost model's per-node delta pricing verdicts.

        The planner only *offers* chunk reuse; acceptance lands on each
        node's :attr:`~repro.optimizer.cost_model.NodeCosts.delta_strategy`
        after pricing (``"delta"`` accepted, ``"full"`` rejected).
        """
        accepted = sum(1 for c in costs.values() if c.delta_strategy == "delta")
        rejected = sum(1 for c in costs.values() if c.delta_strategy == "full")
        help_text = "Delta-vs-full pricing verdicts on planner-offered nodes."
        if accepted:
            self.metrics_registry.counter(
                "repro_incremental_delta_nodes_total", help=help_text, verdict="accepted"
            ).inc(accepted)
        if rejected:
            self.metrics_registry.counter(
                "repro_incremental_delta_nodes_total", help=help_text, verdict="rejected"
            ).inc(rejected)

    def _plan_states(
        self, compiled: CompiledWorkflow, costs: Dict[str, NodeCosts]
    ) -> "Tuple[Dict[str, NodeState], Optional[PlanExplanation]]":
        """Run the strategy's recomputation planner.

        The exact planner additionally yields its min-cut certificate (the
        :class:`~repro.optimizer.recomputation.PlanExplanation` recorded into
        run traces); heuristic planners have no cut to report.
        """
        if self.strategy.recomputation == "optimal":
            return optimal_plan_explained(
                compiled.dag, costs, compiled.outputs,
                registry=self.metrics_registry,
                solver=self._warm_solver,
            )
        planner = RECOMPUTATION_POLICIES[self.strategy.recomputation]
        return planner(compiled.dag, costs, compiled.outputs), None

    def _compile(self, workflow: Workflow) -> CompiledWorkflow:
        """Compile and slice ``workflow``, through the plan cache when enabled."""
        if self._plan_cache is not None:
            return self._plan_cache.compile_sliced(workflow)
        return slice_to_outputs(compile_workflow(workflow))

    def plan(self, workflow: Workflow) -> PhysicalPlan:
        """Compile, slice, and optimize a workflow without executing it.

        Useful for inspecting the optimized execution plan (Figure 1b) or for
        what-if analysis in the versioning UI.
        """
        compiled = self._compile(workflow)
        costs = self._estimate_costs(compiled)
        states, _explanation = self._plan_states(compiled, costs)
        return PhysicalPlan(compiled=compiled, states=states, estimated_cost=plan_cost(states, costs))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        workflow: Workflow,
        description: str = "",
        change_category: str = "",
    ) -> SessionRunResult:
        """Execute one iteration of ``workflow`` and record a new version."""
        iteration_index = len(self.versions)
        # Standalone runs mint their own correlation ID; service-dispatched
        # runs arrive with the request's ID already bound on this thread and
        # keep it, so the whole request journals as one story.
        cid = current_correlation_id()
        scope = (
            correlation_scope(f"run-{self.trace_owner or 'local'}-{iteration_index:04d}")
            if cid is None
            else correlation_scope(cid)
        )
        with scope:
            self.events.emit(
                "run_start",
                tenant=self.trace_owner,
                workflow=getattr(workflow, "name", ""),
                iteration=iteration_index,
                strategy=self.strategy.name,
            )
            try:
                result = self._run_impl(
                    workflow, description, change_category, iteration_index
                )
            except BaseException as exc:
                self.events.emit(
                    "run_error",
                    tenant=self.trace_owner,
                    iteration=iteration_index,
                    error=repr(exc),
                )
                raise
            self.events.emit(
                "run_finish",
                tenant=self.trace_owner,
                iteration=iteration_index,
                ok=True,
                seconds=round(result.report.wall_clock_runtime, 6),
                reuse_fraction=round(result.report.reuse_fraction(), 6),
            )
            return result

    def _run_impl(
        self,
        workflow: Workflow,
        description: str,
        change_category: str,
        iteration_index: int,
    ) -> SessionRunResult:
        compiled = self._compile(workflow)
        delta_plan = self._plan_deltas(compiled, iteration_index)
        costs = self._estimate_costs(compiled, delta_plan)
        if delta_plan is not None and self.metrics_registry.enabled:
            self._record_delta_verdicts(costs)
        states, explanation = self._plan_states(compiled, costs)
        plan = PhysicalPlan(compiled=compiled, states=states)

        policy = self.strategy.make_materialization_policy(
            compiled.dag, costs, self.store.remaining_budget()
        )
        if self.materialization_wrapper is not None:
            policy = self.materialization_wrapper(policy)
        partition_modes = None
        if self._plan_cache is not None and self._partition_planner is not None:
            partition_modes = self._plan_cache.partition_modes(
                compiled, self._partition_planner
            )
        engine = ExecutionEngine(
            self.store,
            policy,
            backend=self.backend,
            partitions=self.partitions,
            partition_planner=self._partition_planner,
            metrics=self.metrics_registry,
            fusion=self.compiled,
            partition_modes=partition_modes,
        )

        diff = diff_workflows(self._previous_compiled, compiled) if self._previous_compiled else None
        if not change_category:
            change_category = self._infer_change_category(compiled, diff)

        trace = (
            self._seed_trace(
                compiled, states, costs, explanation, policy,
                iteration_index, description, change_category,
                delta_plan=delta_plan,
            )
            if self.trace_runs
            else None
        )
        if trace is not None and self.compiled:
            trace.plan_cache = self._plan_cache.last_result
            if self._warm_solver is not None and self.strategy.recomputation == "optimal":
                trace.solver_mode = self._warm_solver.last_mode
        # Pin every artifact the plan LOADs so a concurrent tenant's eviction
        # (shared-cache deployments) cannot invalidate this plan mid-run.
        # Chunked artifacts pin every present chunk of the signature's family.
        load_signatures = []
        for name, state in states.items():
            if state is not NodeState.LOAD:
                continue
            signature = compiled.signature_of(name)
            load_signatures.append(signature)
            load_signatures.extend(self.store.chunk_signatures(signature))
        run_span = self.metrics_registry.span(
            "run",
            metric="repro_run_span_seconds",
            tenant=self.trace_owner or "default",
        )
        with run_span, self.store.pin(load_signatures):
            result: ExecutionResult = engine.execute(
                plan,
                costs,
                iteration=iteration_index,
                description=description,
                change_category=change_category,
                system=self.strategy.name,
                trace=trace,
                delta_plan=delta_plan,
            )

        if trace is not None:
            self.last_trace = trace
            trace.save(trace_path(self.workspace, iteration_index))
            # Index the persisted trace's header summary in the store's
            # catalog database (best-effort; None on JSON workspaces) so
            # `repro trace ls` lists without re-parsing trace bodies.
            register_trace(
                getattr(self.store, "catalog_db", None),
                trace_directory(self.workspace),
                iteration_index,
                trace,
            )
        self.history.update_from_report(result.report)
        self.tracker.observe(compiled)
        self._previous_compiled = compiled
        version = self.versions.record(
            compiled,
            report=result.report,
            description=description,
            change_category=change_category,
            workflow=workflow,
        )
        self._persist_state()
        return SessionRunResult(
            version=version,
            plan=plan,
            report=result.report,
            outputs=result.outputs,
            diff=diff,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def _seed_trace(
        self,
        compiled: CompiledWorkflow,
        states: Dict[str, NodeState],
        costs: Dict[str, NodeCosts],
        explanation: Optional[PlanExplanation],
        policy: Any,
        iteration_index: int,
        description: str,
        change_category: str,
        delta_plan=None,
    ) -> RunTrace:
        """Record the planning half of the run's decision record.

        Every node gets its state verdict, the estimated cost numbers the
        planner weighed, a human-readable rationale, and — when the exact
        planner ran — its side of the min-cut plus the saturated cut edges.
        The scheduler fills in the runtime half during execution.
        """
        trace = RunTrace(
            workflow=compiled.workflow_name,
            iteration=iteration_index,
            description=description,
            change_category=change_category,
            system=self.strategy.name,
            tenant=self.trace_owner,
            backend=self.backend.name,
            parallelism=self.backend.parallelism,
            partitions=self.partitions,
            recomputation_policy=self.strategy.recomputation,
            materialization_policy=getattr(policy, "name", self.strategy.materialization),
            outputs=list(compiled.outputs),
            plan_cost=plan_cost(states, costs),
            created_at=time.time(),
            incremental=self.incremental_active,
        )
        if delta_plan is not None:
            from repro.introspect.trace import DeltaTrace

            for name, delta in sorted(delta_plan.inputs.items()):
                trace.deltas.append(DeltaTrace(
                    input_key=delta.input_key,
                    node=name,
                    mode=delta.mode,
                    chunk_count=delta.chunk_count,
                    clean_chunks=delta.clean_chunks,
                    dirty_chunks=sum(1 for s in delta.statuses if s == "dirty"),
                    new_chunks=sum(1 for s in delta.statuses if s == "new"),
                    removed_chunks=delta.removed_chunks,
                ))
        output_set = set(compiled.outputs)
        for name in compiled.dag.topological_order():
            node_costs = costs[name]
            entry = trace.node(name)
            entry.signature = compiled.signature_of(name)
            entry.operator_type = type(compiled.operator(name)).__name__
            category = compiled.categories.get(name)
            entry.category = getattr(category, "value", str(category)) if category else ""
            entry.state = states[name].value
            entry.parents = list(compiled.dag.parents(name))
            entry.output = name in output_set
            entry.est_compute_cost = node_costs.compute_cost
            entry.est_load_cost = node_costs.load_cost
            entry.est_output_size = node_costs.output_size
            entry.was_materialized = node_costs.materialized
            entry.chunk_count = node_costs.chunk_count
            entry.chunks_present = node_costs.chunks_present
            entry.reuse_reason = self._reuse_reason(states[name], node_costs)
            entry.delta_strategy = node_costs.delta_strategy
            entry.delta_chunks_total = node_costs.delta_chunk_count
            entry.delta_chunks_dirty = node_costs.delta_dirty_chunks
            entry.delta_chunks_reused = node_costs.delta_reusable_chunks
            entry.delta_est_savings = node_costs.delta_savings
            if delta_plan is not None:
                if name in delta_plan.candidates:
                    entry.delta_reason = delta_plan.candidates[name].reason
                elif name in delta_plan.widened:
                    entry.delta_reason = delta_plan.widened[name]
            if explanation is not None:
                entry.cut_side = "source" if explanation.avail_side.get(name) else "sink"
        if explanation is not None:
            trace.cut_value = explanation.cut_value
            for edge in explanation.cut_edges:
                trace.add_cut_edge(edge.source, edge.target, edge.capacity, node=edge.node)
        return trace

    @staticmethod
    def _reuse_reason(state: NodeState, node_costs: NodeCosts) -> str:
        """One line of rationale for a node's state verdict, with its numbers."""
        compute = node_costs.compute_cost
        load = node_costs.load_cost
        if state is NodeState.LOAD:
            return f"reuse: load est {load:.6g}s beats recomputing (est {compute:.6g}s + upstream)"
        if state is NodeState.PRUNE:
            return "pruned: no computed consumer needs this value"
        if node_costs.delta_strategy == "delta":
            return (
                f"delta: recompute {node_costs.delta_dirty_chunks}/"
                f"{node_costs.delta_chunk_count} dirty chunks + load "
                f"{node_costs.delta_reusable_chunks} clean (est {compute:.6g}s, "
                f"saves est {node_costs.delta_savings:.6g}s vs full)"
            )
        if node_costs.delta_strategy == "full":
            return (
                f"recompute est {compute:.6g}s: delta rejected "
                f"({node_costs.delta_reusable_chunks}/{node_costs.delta_chunk_count} "
                f"chunks reusable, loading them would not beat full recompute)"
            )
        if 0 < node_costs.chunks_present < node_costs.chunk_count:
            return (
                f"recompute est {compute:.6g}s: partial chunk hit "
                f"({node_costs.chunks_present}/{node_costs.chunk_count} chunks reusable)"
            )
        if not node_costs.materialized:
            return f"recompute est {compute:.6g}s: no materialized artifact to load"
        return f"recompute est {compute:.6g}s preferred over load est {load:.6g}s"

    def trace_for(self, run: Optional[int] = None) -> RunTrace:
        """The requested run's trace: in-memory for the latest, JSONL otherwise."""
        if run is None and self.last_trace is not None:
            return self.last_trace
        return RunTrace.load(resolve_trace_file(trace_directory(self.workspace), run))

    def explain(self, run: Optional[int] = None, color: bool = False) -> str:
        """Render one run's decisions as a query-plan-style tree.

        ``run=None`` explains the latest run (the in-memory
        :attr:`last_trace` when this session executed one, else the newest
        persisted trace); pass an iteration index for an earlier run.
        """
        return ExplainRenderer(self.trace_for(run)).render_ascii(color=color)

    def _persist_state(self) -> None:
        """Write version records and the cost database next to the artifacts."""
        from repro.versioning.persistence import save_cost_history, save_version_store

        save_version_store(self.versions, self.workspace)
        save_cost_history(self.history, self.workspace)
        # An all-LOAD (fully reused) run mutates nothing in the store, so its
        # measured load times / recency stamps only exist as deferred catalog
        # updates — persist them for the next process's cost estimator.
        self.store.flush()

    def _infer_change_category(self, compiled: CompiledWorkflow, diff: Optional[WorkflowDiff]) -> str:
        """Classify an iteration by the deepest category among its edited nodes.

        Data-prep edits dominate ML edits dominate post-processing edits,
        because an upstream edit invalidates everything downstream (the
        coloring convention of Figure 2).
        """
        if diff is None:
            return "initial"
        edited = set(diff.added) | set(diff.changed)
        edited_categories = set()
        for name in edited:
            category = compiled.categories.get(name)
            if category is not None:
                edited_categories.add(category)
        for category in (ChangeCategory.DATA_PREP, ChangeCategory.ML, ChangeCategory.POSTPROCESS):
            if category in edited_categories:
                return category.value
        return "none" if not edited else "source"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics(self) -> MetricsTracker:
        return MetricsTracker(self.versions)

    def cumulative_runtime(self) -> float:
        return self.history.cumulative_runtime()

    def reuse_fraction_last_run(self) -> float:
        if not self.history.reports:
            return 0.0
        return self.history.reports[-1].reuse_fraction()

    def storage_used(self) -> float:
        return self.store.used_bytes()
