"""Machine-generated workflow edit suggestions (the demo's "Suggest Modifications").

The Helix demo lets attendees request machine-generated edits shown inline with
git-style highlighting, so they can iterate without mastering the DSL.  This
module implements the underlying suggestion engine over our DSL: given the
current workflow (and optionally the session's metric history), it proposes a
ranked list of concrete next iterations — hyperparameter perturbations, model
family swaps, richer evaluation, and feature-engineering edits that pull in
declared-but-unused extractors.

Each suggestion carries a ready-to-run :class:`~repro.dsl.workflow.Workflow`,
so applying one is ``session.run(suggestion.workflow, description=suggestion.description)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.compiler.codegen import compile_workflow
from repro.compiler.slicing import unused_nodes
from repro.dsl.operators import Bucketizer, ChangeCategory, Evaluator, FeatureAssembler, Learner
from repro.dsl.workflow import Workflow
from repro.errors import WorkflowError


@dataclass
class SuggestedEdit:
    """One machine-generated modification of a workflow."""

    description: str
    category: ChangeCategory
    workflow: Workflow
    rationale: str = ""

    def summary(self) -> str:
        return f"[{self.category.value}] {self.description} — {self.rationale}"


@dataclass
class SuggestionConfig:
    """Knobs for the suggestion engine."""

    reg_param_factors: tuple = (0.1, 10.0)
    alternative_model_types: tuple = ("naive_bayes", "logistic_regression")
    richer_metrics: tuple = ("accuracy", "f1", "precision", "recall")
    bucket_factor: int = 2
    max_suggestions: int = 8


def _find_single_node(workflow: Workflow, operator_type) -> Optional[str]:
    names = [name for name, op in workflow if isinstance(op, operator_type)]
    return names[0] if len(names) == 1 else (names[0] if names else None)


def _clone_with_replacement(workflow: Workflow, node: str, operator) -> Workflow:
    clone = workflow.copy()
    clone.replace(node, operator)
    return clone


def suggest_modifications(workflow: Workflow, config: SuggestionConfig = SuggestionConfig()) -> List[SuggestedEdit]:
    """Propose concrete next iterations for ``workflow``.

    Suggestions are ordered by the paper's iteration taxonomy: ML tweaks first
    (cheap to try thanks to reuse), then evaluation enrichments, then feature
    engineering (most expensive, most informative).
    """
    suggestions: List[SuggestedEdit] = []

    learner_node = _find_single_node(workflow, Learner)
    evaluator_node = _find_single_node(workflow, Evaluator)
    assembler_node = _find_single_node(workflow, FeatureAssembler)

    # --- ML (orange) suggestions -------------------------------------------------
    if learner_node is not None:
        learner: Learner = workflow.operator(learner_node)
        current_reg = learner.hyperparams.get("reg_param")
        if current_reg is not None:
            for factor in config.reg_param_factors:
                new_reg = current_reg * factor
                new_hyperparams = dict(learner.hyperparams, reg_param=new_reg)
                replacement = Learner(
                    learner.examples,
                    model_type=learner.model_type,
                    standardize=learner.standardize,
                    **new_hyperparams,
                )
                suggestions.append(
                    SuggestedEdit(
                        description=f"set {learner_node}.reg_param to {new_reg:g}",
                        category=ChangeCategory.ML,
                        workflow=_clone_with_replacement(workflow, learner_node, replacement),
                        rationale="regularization sweep around the current value",
                    )
                )
        for model_type in config.alternative_model_types:
            if model_type == learner.model_type:
                continue
            hyperparams = {} if model_type == "naive_bayes" else dict(learner.hyperparams)
            replacement = Learner(learner.examples, model_type=model_type, standardize=learner.standardize, **hyperparams)
            suggestions.append(
                SuggestedEdit(
                    description=f"switch {learner_node} to {model_type}",
                    category=ChangeCategory.ML,
                    workflow=_clone_with_replacement(workflow, learner_node, replacement),
                    rationale="compare a different model family on identical features",
                )
            )

    # --- Evaluation (green) suggestions -------------------------------------------
    if evaluator_node is not None:
        evaluator: Evaluator = workflow.operator(evaluator_node)
        missing = [metric for metric in config.richer_metrics if metric not in evaluator.metrics]
        if missing:
            replacement = Evaluator(
                evaluator.predictions,
                metrics=tuple(list(evaluator.metrics) + missing),
                positive_label=evaluator.positive_label,
            )
            suggestions.append(
                SuggestedEdit(
                    description=f"report {', '.join(missing)} in {evaluator_node}",
                    category=ChangeCategory.POSTPROCESS,
                    workflow=_clone_with_replacement(workflow, evaluator_node, replacement),
                    rationale="richer evaluation is nearly free thanks to reuse",
                )
            )

    # --- Feature engineering (purple) suggestions ----------------------------------
    if assembler_node is not None:
        assembler: FeatureAssembler = workflow.operator(assembler_node)
        compiled = compile_workflow(workflow) if workflow.outputs() else None
        if compiled is not None:
            dangling = [
                name
                for name in unused_nodes(compiled)
                if workflow.operator(name).category is ChangeCategory.DATA_PREP and name != assembler_node
            ]
            for name in dangling[:2]:
                replacement = FeatureAssembler(
                    extractors=list(assembler.extractors) + [name], label=assembler.label
                )
                suggestions.append(
                    SuggestedEdit(
                        description=f"add declared-but-unused extractor {name!r} to {assembler_node}",
                        category=ChangeCategory.DATA_PREP,
                        workflow=_clone_with_replacement(workflow, assembler_node, replacement),
                        rationale="the extractor is already declared in the program but not fed to the learner",
                    )
                )

        for extractor_name in assembler.extractors:
            operator = workflow.operator(extractor_name)
            if isinstance(operator, Bucketizer):
                replacement = Bucketizer(operator.source, bins=operator.bins * config.bucket_factor)
                suggestions.append(
                    SuggestedEdit(
                        description=f"increase {extractor_name}.bins to {operator.bins * config.bucket_factor}",
                        category=ChangeCategory.DATA_PREP,
                        workflow=_clone_with_replacement(workflow, extractor_name, replacement),
                        rationale="finer discretization of a numeric feature",
                    )
                )
                break

    if not suggestions:
        raise WorkflowError("no suggestions available for this workflow (no learner/evaluator/assembler found)")
    return suggestions[: config.max_suggestions]
