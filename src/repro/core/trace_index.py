"""Indexing persisted run traces into the workspace catalog database.

A run trace is a JSONL file (one header line plus one line per node — see
:mod:`repro.introspect.trace`) and stays the full record.  But ``repro trace
ls`` only needs each run's *header summary* (workflow, description, node
state counts, wall clock), and parsing every run's full body to print one
table row is O(total nodes ever traced) — the listing bottleneck the
SQLite catalog exists to remove.

This module maintains the ``trace_runs`` table in :class:`CatalogDB` as a
derived index over those files, keyed by ``(trace_dir, iteration)`` with the
directory stored absolute, so one shared catalog (a service root's cache)
can index every tenant's trace directory side by side:

* :func:`register_trace` — called by the session right after it persists a
  trace; one indexed row per run, written best-effort (an index failure
  must never fail the run that produced the trace).
* :func:`trace_summaries` — the ``repro trace ls`` read path: serve rows
  from the index, parse only the runs the index is missing (traces written
  by older builds, or copied in from elsewhere), and backfill those so the
  next listing is fully indexed.

The module lives in :mod:`repro.core` rather than :mod:`repro.introspect`
because it imports both the trace dataclasses *and* the storage catalog —
core already depends on both, and neither may depend on the other.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.errors import StorageError
from repro.introspect.trace import RunTrace
from repro.storage.catalog import CatalogDB


def trace_run_row(trace_dir: str, iteration: int, trace: RunTrace) -> Dict[str, Any]:
    """One ``trace_runs`` row summarizing a persisted trace's header."""
    return {
        "trace_dir": os.path.abspath(trace_dir),
        "iteration": int(iteration),
        "workflow": trace.workflow,
        "description": trace.description,
        "system": trace.system,
        "tenant": trace.tenant,
        "computed": len(trace.nodes_in_state("compute")),
        "loaded": len(trace.nodes_in_state("load")),
        "pruned": len(trace.nodes_in_state("prune")),
        "wall_seconds": float(trace.wall_clock_seconds),
        "created_at": float(trace.created_at),
    }


def register_trace(
    db: Optional[CatalogDB], trace_dir: str, iteration: int, trace: RunTrace
) -> bool:
    """Index one persisted trace; returns whether a row was written.

    Best-effort by design: ``db`` is ``None`` on un-migrated JSON workspaces
    (nothing to index — listings parse the JSONL as they always have), and a
    storage error here must not fail the run whose trace was already safely
    persisted.
    """
    if db is None:
        return False
    try:
        db.upsert_trace_run(trace_run_row(trace_dir, iteration, trace))
        return True
    except StorageError:
        return False


def summary_from_row(run: int, row: Dict[str, Any]) -> Dict[str, Any]:
    """An indexed row in ``repro trace ls`` display shape."""
    summary = {
        "run": run,
        "workflow": row["workflow"],
        "description": row["description"],
        "system": row["system"],
        "computed": int(row["computed"]),
        "loaded": int(row["loaded"]),
        "pruned": int(row["pruned"]),
        "wall_s": round(float(row["wall_seconds"]), 4),
    }
    if row["tenant"]:
        summary["tenant"] = row["tenant"]
    return summary


def trace_summaries(
    trace_dir: str, runs: List[int], db: Optional[CatalogDB] = None
) -> List[Dict[str, Any]]:
    """Listing rows for ``runs``, indexed where possible.

    Runs present in the catalog index are served without touching their
    JSONL files; the rest are parsed (the only correct source) and
    backfilled into the index so subsequent listings skip the parse too.
    """
    indexed: Dict[int, Dict[str, Any]] = {}
    if db is not None:
        try:
            indexed = db.trace_runs_for(os.path.abspath(trace_dir))
        except StorageError:
            indexed = {}
    summaries = []
    for run in runs:
        row = indexed.get(run)
        if row is None:
            trace = RunTrace.load(os.path.join(trace_dir, f"run-{run:04d}.jsonl"))
            register_trace(db, trace_dir, run, trace)
            row = trace_run_row(trace_dir, run, trace)
        summaries.append(summary_from_row(run, row))
    return summaries
