"""Public end-to-end API: the iterative HELIX session.

:class:`~repro.core.session.HelixSession` is what a user of this library
instantiates once per project.  Every call to :meth:`HelixSession.run` is one
human-in-the-loop *iteration*: the session compiles the workflow, slices it,
detects changes against previous iterations, plans reuse with the
recomputation optimizer, executes the plan, materializes selected
intermediates under the storage budget, and records a new version.
"""

from repro.core.migrate import migrate_store, migrate_workspace
from repro.core.session import HelixSession, SessionRunResult
from repro.core.suggestions import SuggestedEdit, SuggestionConfig, suggest_modifications
from repro.core.trace_index import register_trace, trace_summaries
from repro.core.workspace import (
    WorkspaceResolutionError,
    list_trace_runs,
    resolve_store_root,
    resolve_trace_dir,
    resolve_trace_file,
    trace_directory,
    trace_path,
)

__all__ = [
    "HelixSession",
    "SessionRunResult",
    "SuggestedEdit",
    "SuggestionConfig",
    "suggest_modifications",
    "WorkspaceResolutionError",
    "resolve_store_root",
    "resolve_trace_dir",
    "resolve_trace_file",
    "trace_directory",
    "trace_path",
    "list_trace_runs",
    "migrate_store",
    "migrate_workspace",
    "register_trace",
    "trace_summaries",
]
