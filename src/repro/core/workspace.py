"""Workspace layout resolution shared by the CLI verbs, sessions, and services.

Three directory shapes exist in the wild and every tool that points at "a
workspace" must resolve them identically:

* a **session workspace** — ``<ws>/artifacts`` (the store) plus
  ``<ws>/traces`` (run traces) plus version/cost records;
* a **service root** — ``<root>/cache`` (the shared artifact cache) plus
  ``<root>/tenants/<tenant>/`` (one session workspace per tenant);
* a **bare store directory** — holds the catalog (``catalog.sqlite`` or the
  legacy ``catalog.json``) directly.

:func:`resolve_store_root` (used by ``repro store``) and
:func:`resolve_trace_dir` (used by ``repro explain`` / ``repro trace``) walk
the same candidates in the same order, so session and service roots resolve
the same way everywhere — previously the store verb carried its own private
copy of this logic.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Optional

from repro.errors import HelixError

#: Directory (under a session workspace) that holds persisted run traces.
TRACE_DIRNAME = "traces"

_TRACE_FILE_PATTERN = re.compile(r"^run-(\d+)\.jsonl$")


class WorkspaceResolutionError(HelixError):
    """A workspace path does not resolve to the requested component."""


def resolve_store_root(workspace: str) -> Optional[str]:
    """Find the artifact store under a workspace path.

    Accepts a session workspace (``<ws>/artifacts``), a service root
    (``<ws>/cache``), or the store directory itself — recognized by its
    catalog file, either format (``catalog.sqlite`` wins over a leftover
    ``catalog.json``, mirroring the store's dual-read rule).  Returns
    ``None`` when no catalog is found.
    """
    candidates = [
        os.path.join(workspace, "artifacts"),
        os.path.join(workspace, "cache"),
        workspace,
    ]
    for candidate in candidates:
        for catalog_name in ("catalog.sqlite", "catalog.json"):
            if os.path.exists(os.path.join(candidate, catalog_name)):
                return candidate
    return None


def trace_directory(workspace: str) -> str:
    """Where a session workspace keeps its run traces (next to the artifacts)."""
    return os.path.join(workspace, TRACE_DIRNAME)


def trace_path(workspace: str, iteration: int) -> str:
    """Canonical path of one iteration's persisted trace."""
    return os.path.join(trace_directory(workspace), f"run-{iteration:04d}.jsonl")


def tenant_workspaces(workspace: str) -> Dict[str, str]:
    """Tenant name → session workspace for a service root (empty otherwise)."""
    tenants_root = os.path.join(workspace, "tenants")
    if not os.path.isdir(tenants_root):
        return {}
    return {
        tenant: os.path.join(tenants_root, tenant)
        for tenant in sorted(os.listdir(tenants_root))
        if os.path.isdir(os.path.join(tenants_root, tenant))
    }


def resolve_trace_dir(workspace: str, tenant: Optional[str] = None) -> str:
    """Find the trace directory under a session workspace or service root.

    Resolution mirrors :func:`resolve_store_root`: a plain session workspace
    answers with its own ``traces/`` directory; a service root answers with
    the named tenant's (``--tenant``), or the single traced tenant when there
    is exactly one.  Raises :class:`WorkspaceResolutionError` with the list
    of traced tenants when the choice is ambiguous, and when nothing under
    the path holds traces at all.
    """
    if tenant:
        tenants = tenant_workspaces(workspace)
        if tenant not in tenants:
            known = ", ".join(sorted(tenants)) or "none"
            raise WorkspaceResolutionError(
                f"no tenant {tenant!r} under {workspace} (tenants: {known})"
            )
        return trace_directory(tenants[tenant])
    own = trace_directory(workspace)
    if os.path.isdir(own):
        return own
    traced = {
        name: trace_directory(path)
        for name, path in tenant_workspaces(workspace).items()
        if os.path.isdir(trace_directory(path))
    }
    if len(traced) == 1:
        return next(iter(traced.values()))
    if traced:
        raise WorkspaceResolutionError(
            f"{workspace} is a service root with traces for several tenants "
            f"({', '.join(sorted(traced))}); pass --tenant to pick one"
        )
    raise WorkspaceResolutionError(
        f"no run traces found under {workspace} (expected {TRACE_DIRNAME}/run-*.jsonl "
        "in a session workspace or under tenants/<tenant>/)"
    )


def list_trace_runs(trace_dir: str) -> List[int]:
    """Sorted iteration indices with a persisted trace in ``trace_dir``."""
    if not os.path.isdir(trace_dir):
        return []
    runs = []
    for filename in os.listdir(trace_dir):
        match = _TRACE_FILE_PATTERN.match(filename)
        if match:
            runs.append(int(match.group(1)))
    return sorted(runs)


def resolve_trace_file(trace_dir: str, run: Optional[int] = None) -> str:
    """Path of the requested (or latest) persisted trace in ``trace_dir``."""
    runs = list_trace_runs(trace_dir)
    if not runs:
        raise WorkspaceResolutionError(f"no run traces in {trace_dir}")
    if run is None:
        run = runs[-1]
    if run not in runs:
        available = ", ".join(str(index) for index in runs)
        raise WorkspaceResolutionError(
            f"no trace for run {run} in {trace_dir} (available runs: {available})"
        )
    return os.path.join(trace_dir, f"run-{run:04d}.jsonl")
