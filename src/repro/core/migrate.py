"""In-place migration of a JSON-catalog workspace to the SQLite catalog.

``repro store migrate`` (and :func:`migrate_workspace` under it) converts the
three legacy JSON metadata files into one WAL-mode ``catalog.sqlite``:

* ``catalog.json`` → the ``artifacts`` (+ derived ``chunks``) tables,
* ``cache_meta.json`` → the ``owners`` and ``compute_costs`` tables,
* the trace JSONL headers → the ``trace_runs`` index.

The migration is **lossless and observable-identical**: every catalog entry
is copied field-for-field (no reconciliation against the byte store — that
stays the artifact store's open-time job, applied equally to both formats),
so ``repro store ls`` prints the same table before and after.  It is also
**reversible by construction**: the JSON files are renamed to ``*.bak``
rather than deleted, and the trace JSONL files — still the full record, the
index is derived — are never touched.

Migration is optional.  Un-migrated workspaces keep working through the
store's dual-read rule (:func:`repro.storage.catalog.open_catalog_state`);
migrating buys the SQLite plane's multi-process concurrency, crash safety,
and indexed listings.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from repro.core.trace_index import register_trace
from repro.core.workspace import (
    list_trace_runs,
    resolve_store_root,
    tenant_workspaces,
    trace_directory,
)
from repro.errors import StorageError
from repro.introspect.trace import RunTrace
from repro.storage.catalog import (
    JSON_SIDECAR_FILENAME,
    ArtifactMeta,
    CatalogDB,
    json_catalog_path,
    sqlite_catalog_path,
)


def _backup(path: str) -> Optional[str]:
    """Rename a migrated JSON file out of the dual-read probe's way."""
    if not os.path.exists(path):
        return None
    backup_path = f"{path}.bak"
    os.replace(path, backup_path)
    return backup_path


def migrate_store(root: str) -> Dict[str, Any]:
    """Convert one store root's JSON metadata into ``catalog.sqlite``.

    Returns a summary of what moved.  Raises :class:`StorageError` when the
    root is already on SQLite (nothing to migrate — re-running is an
    explicit no-op rather than a silent one, so scripted migrations notice
    double runs) or when the JSON catalog is unreadable.
    """
    sqlite_path = sqlite_catalog_path(root)
    if os.path.exists(sqlite_path):
        raise StorageError(
            f"{root} already has a SQLite catalog ({sqlite_path}); nothing to migrate"
        )
    json_path = json_catalog_path(root)
    if not os.path.exists(json_path):
        raise StorageError(f"no JSON catalog to migrate at {json_path}")
    try:
        with open(json_path, "r") as handle:
            entries = json.load(handle)
    except (OSError, ValueError) as exc:
        raise StorageError(f"cannot read artifact catalog at {json_path}: {exc}") from exc

    metas = [ArtifactMeta.from_dict(entry) for entry in entries]
    db = CatalogDB(sqlite_path)
    try:
        db.upsert_artifacts(metas)
        owners: Dict[str, str] = {}
        costs: Dict[str, float] = {}
        sidecar_path = os.path.join(root, JSON_SIDECAR_FILENAME)
        if os.path.exists(sidecar_path):
            try:
                with open(sidecar_path, "r") as handle:
                    sidecar = json.load(handle)
            except (OSError, ValueError):
                sidecar = {}  # same best-effort contract as the cache's loader
            owners = dict(sidecar.get("owners", {}))
            costs = {sig: float(cost) for sig, cost in sidecar.get("compute_costs", {}).items()}
            for signature, tenant in owners.items():
                db.set_owner(signature, tenant)
            db.set_compute_costs(costs)
    finally:
        db.close()

    backups = [_backup(json_path), _backup(os.path.join(root, JSON_SIDECAR_FILENAME))]
    return {
        "root": root,
        "artifacts": len(metas),
        "owners": len(owners),
        "compute_costs": len(costs),
        "backups": [path for path in backups if path],
    }


def index_traces(db: CatalogDB, workspace: str) -> int:
    """Backfill the ``trace_runs`` index for every trace dir under ``workspace``.

    Covers the workspace's own ``traces/`` plus each tenant's under a service
    root.  Unreadable trace files are skipped — the index is derived data and
    must not make migration fail.
    """
    trace_dirs = [trace_directory(workspace)]
    trace_dirs += [trace_directory(path) for path in tenant_workspaces(workspace).values()]
    indexed = 0
    for trace_dir in trace_dirs:
        for run in list_trace_runs(trace_dir):
            try:
                trace = RunTrace.load(os.path.join(trace_dir, f"run-{run:04d}.jsonl"))
            except Exception:
                continue
            if register_trace(db, trace_dir, run, trace):
                indexed += 1
    return indexed


def migrate_workspace(workspace: str) -> Dict[str, Any]:
    """The ``repro store migrate`` entry point: store metadata plus trace index.

    Resolves the store root the same way every other verb does (session
    workspace, service root, or bare store directory), migrates it, then
    backfills the trace index from the workspace's persisted traces.
    """
    root = resolve_store_root(workspace)
    if root is None:
        raise StorageError(f"no artifact catalog found under {workspace}")
    summary = migrate_store(root)
    db = CatalogDB(sqlite_catalog_path(root))
    try:
        summary["trace_runs"] = index_traces(db, workspace)
    finally:
        db.close()
    return summary
