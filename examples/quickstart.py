"""Quickstart: declare a workflow, run it, change it, and watch HELIX reuse work.

This is the 5-minute tour of the public API:

1. Build a small classification workflow with the declarative DSL.
2. Run it inside a :class:`repro.HelixSession` (iteration 1).
3. Change one hyperparameter and run again (iteration 2) — only the learner
   and its downstream operators re-execute.
4. Change only the reported metrics (iteration 3) — almost nothing re-executes.
5. Ask the session to *explain* the last run: ``session.explain()`` renders
   the plan tree with every node's reuse verdict, the cost numbers behind
   it, its storage tier/codec, and the min-cut boundary (see docs/explain.md).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile

from repro import HELIX, HelixSession, Workflow
from repro.datagen.census import CENSUS_FIELDS, CensusConfig
from repro.dsl import (
    Bucketizer,
    CsvScanner,
    Evaluator,
    FeatureAssembler,
    FieldExtractor,
    InteractionFeature,
    LabelExtractor,
    Learner,
    Predictor,
    SyntheticCensusSource,
)

NUMERIC_FIELDS = ("age", "education_num", "capital_gain", "capital_loss", "hours_per_week", "target")


def build_workflow(reg_param: float = 0.1, metrics=("accuracy",)) -> Workflow:
    """One version of the Census income-prediction workflow (compare Figure 1a)."""
    wf = Workflow("quickstart_census")

    data = wf.add("data", SyntheticCensusSource(CensusConfig(n_train=1500, n_test=300, seed=7)))
    rows = wf.add("rows", CsvScanner(data, fields=CENSUS_FIELDS, numeric_fields=NUMERIC_FIELDS))

    age = wf.add("age", FieldExtractor(rows, field="age"))
    edu = wf.add("edu", FieldExtractor(rows, field="education"))
    occ = wf.add("occ", FieldExtractor(rows, field="occupation"))
    target = wf.add("target", LabelExtractor(rows, field="target"))

    age_bucket = wf.add("ageBucket", Bucketizer(age, bins=10))
    edu_x_occ = wf.add("eduXocc", InteractionFeature([edu, occ]))

    income = wf.add("income", FeatureAssembler(extractors=[edu, age_bucket, edu_x_occ], label=target))
    model = wf.add("incPred", Learner(income, model_type="logistic_regression", reg_param=reg_param))
    predictions = wf.add("predictions", Predictor(model, income))
    checked = wf.add("checked", Evaluator(predictions, metrics=metrics))

    wf.mark_output(predictions, checked)
    return wf


def describe(result, label: str) -> None:
    reused = result.report.reuse_fraction()
    print(f"\n== {label} ==")
    print(f"runtime: {result.runtime:.3f}s   reuse: {reused:.0%}   category: {result.report.change_category}")
    print("metrics:", {key: round(value, 4) for key, value in result.metrics.items()})
    print("plan   :", {name: state.value for name, state in result.plan.states.items()})


def main() -> None:
    workspace = tempfile.mkdtemp(prefix="helix_quickstart_")
    session = HelixSession(workspace=workspace, strategy=HELIX)

    describe(session.run(build_workflow(), description="initial version"), "iteration 1: initial run")

    describe(
        session.run(build_workflow(reg_param=0.01), description="lower regularization"),
        "iteration 2: ML change (only the learner re-runs)",
    )

    describe(
        session.run(build_workflow(reg_param=0.01, metrics=("accuracy", "f1", "precision", "recall")),
                    description="richer evaluation"),
        "iteration 3: evaluation change (nearly everything reused)",
    )

    # Why did iteration 3 reuse nearly everything?  Ask the session: the
    # explain tree shows each node's LOAD/COMPUTE/PRUNE verdict, the cost
    # numbers that drove it, and which tier/codec served each reused
    # artifact.  The same tree is available offline via `repro explain
    # --workspace <workspace>` (the trace persists as JSONL under
    # <workspace>/traces/).
    print("\n== explain: why iteration 3 ran the way it did ==")
    print(session.explain())

    print("\n== version log ==")
    print(session.versions.log())
    print(f"\ncumulative runtime: {session.cumulative_runtime():.3f}s")
    print(f"artifact store usage: {session.storage_used() / 1e6:.2f} MB in {workspace}")


if __name__ == "__main__":
    main()
