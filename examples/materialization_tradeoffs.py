"""Exploring the materialization trade-off and the comparison systems.

Uses the paper-scale cost-annotated workloads and the virtual-clock simulator
to answer two questions interactively:

1. How do HELIX, DeepDive, KeystoneML, and unoptimized HELIX compare on the
   Figure 2 workloads (cumulative runtime per iteration)?
2. How does the storage budget change the picture for HELIX's online
   materialization policy?

A final section runs a *real* (small) session under a tight storage budget
and prints ``session.explain()``, so you can see the online materialization
verdicts — the ``r_i`` scores, what fit the budget, and where each artifact
landed — on actual operators (see docs/explain.md for the notation).

Everything here runs in a couple of seconds.

Run with:  python examples/materialization_tradeoffs.py
"""

from __future__ import annotations

import tempfile

from repro.baselines import DEEPDIVE, HELIX, HELIX_UNOPTIMIZED, KEYSTONEML, ExecutionStrategy
from repro.bench.harness import run_simulated_comparison
from repro.bench.reporting import format_table
from repro.core.session import HelixSession
from repro.datagen.census import CensusConfig
from repro.workloads.census_workload import CensusVariant, build_census_workflow
from repro.workloads.simulated import census_sim_workload, ie_sim_workload, sim_defaults

GB = 1e9


def figure2_comparisons() -> None:
    print("== Figure 2(a): information extraction, HELIX vs DeepDive (simulated, paper scale) ==")
    ie = run_simulated_comparison("ie", ie_sim_workload(), [HELIX, DEEPDIVE], defaults=sim_defaults())
    print(ie.render())
    reduction = 1.0 - ie.cumulative("helix") / ie.cumulative("deepdive")
    print(f"HELIX cumulative runtime is {reduction:.0%} lower than DeepDive's (paper: ~60%).\n")

    print("== Figure 2(b): Census classification, HELIX vs KeystoneML vs unoptimized ==")
    census = run_simulated_comparison(
        "census", census_sim_workload(), [HELIX, KEYSTONEML, HELIX_UNOPTIMIZED], defaults=sim_defaults()
    )
    print(census.render())
    print(f"KeystoneML pays {census.speedup_over('keystoneml'):.1f}x HELIX's cumulative runtime "
          "(paper: nearly an order of magnitude).\n")


def storage_budget_sweep() -> None:
    print("== HELIX online materialization under shrinking storage budgets (Census workload) ==")
    rows = []
    for budget in (float("inf"), 8 * GB, 4 * GB, 2 * GB, 1 * GB, 0.0):
        strategy = ExecutionStrategy(name="helix", recomputation="optimal", materialization="helix_online")
        result = run_simulated_comparison(
            "budget", census_sim_workload(), [strategy], storage_budget=budget, defaults=sim_defaults()
        )
        reports = result.reports_by_system["helix"]
        rows.append(
            {
                "budget": "unlimited" if budget == float("inf") else f"{budget / GB:.2g} GB",
                "cumulative_runtime_s": round(sum(r.total_runtime for r in reports), 1),
                "peak_storage_GB": round(max(r.storage_used for r in reports) / GB, 2),
            }
        )
    print(format_table(rows))
    print("\nWith no storage at all the session degenerates to recompute-everything;")
    print("a few GB already buys back most of the benefit of unlimited storage.")


def explain_materialization_decisions() -> None:
    """Run a real two-iteration session under a tight budget and explain it."""
    print("\n== explain: online materialization verdicts under a 3 MB budget ==")
    # 3 MB is *tight* here: never-run nodes are estimated at the 1 MB default
    # size, so the online policy can only admit a prefix of the first
    # iteration's nodes before the (logical) budget runs out — the explain
    # tree below shows both "materialize" and "skip (over budget)" verdicts,
    # and iteration 2 loading exactly what made it into the store.
    base = CensusVariant(data_config=CensusConfig(n_train=300, n_test=80, seed=5))
    session = HelixSession(
        tempfile.mkdtemp(prefix="helix_tradeoffs_"), storage_budget=3_000_000
    )
    session.run(build_census_workflow(base), description="initial")
    # Iteration 2 edits the learner: upstream nodes are reuse candidates, but
    # only the artifacts that fit the budget were materialized — the explain
    # tree shows each node's r_i score, the "over budget" skips, and which
    # nodes load from the store as a result.
    session.run(
        build_census_workflow(CensusVariant(data_config=base.data_config, reg_param=0.01)),
        description="lower regularization",
    )
    print(session.explain())


def main() -> None:
    figure2_comparisons()
    storage_budget_sweep()
    explain_materialization_decisions()


if __name__ == "__main__":
    main()
