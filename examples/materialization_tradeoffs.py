"""Exploring the materialization trade-off and the comparison systems (simulator).

Uses the paper-scale cost-annotated workloads and the virtual-clock simulator
to answer two questions interactively:

1. How do HELIX, DeepDive, KeystoneML, and unoptimized HELIX compare on the
   Figure 2 workloads (cumulative runtime per iteration)?
2. How does the storage budget change the picture for HELIX's online
   materialization policy?

Everything here runs in a couple of seconds because no operator actually
executes — only the optimizers and the cost model do.

Run with:  python examples/materialization_tradeoffs.py
"""

from __future__ import annotations

from repro.baselines import DEEPDIVE, HELIX, HELIX_UNOPTIMIZED, KEYSTONEML, ExecutionStrategy
from repro.bench.harness import run_simulated_comparison
from repro.bench.reporting import format_table
from repro.workloads.simulated import census_sim_workload, ie_sim_workload, sim_defaults

GB = 1e9


def figure2_comparisons() -> None:
    print("== Figure 2(a): information extraction, HELIX vs DeepDive (simulated, paper scale) ==")
    ie = run_simulated_comparison("ie", ie_sim_workload(), [HELIX, DEEPDIVE], defaults=sim_defaults())
    print(ie.render())
    reduction = 1.0 - ie.cumulative("helix") / ie.cumulative("deepdive")
    print(f"HELIX cumulative runtime is {reduction:.0%} lower than DeepDive's (paper: ~60%).\n")

    print("== Figure 2(b): Census classification, HELIX vs KeystoneML vs unoptimized ==")
    census = run_simulated_comparison(
        "census", census_sim_workload(), [HELIX, KEYSTONEML, HELIX_UNOPTIMIZED], defaults=sim_defaults()
    )
    print(census.render())
    print(f"KeystoneML pays {census.speedup_over('keystoneml'):.1f}x HELIX's cumulative runtime "
          "(paper: nearly an order of magnitude).\n")


def storage_budget_sweep() -> None:
    print("== HELIX online materialization under shrinking storage budgets (Census workload) ==")
    rows = []
    for budget in (float("inf"), 8 * GB, 4 * GB, 2 * GB, 1 * GB, 0.0):
        strategy = ExecutionStrategy(name="helix", recomputation="optimal", materialization="helix_online")
        result = run_simulated_comparison(
            "budget", census_sim_workload(), [strategy], storage_budget=budget, defaults=sim_defaults()
        )
        reports = result.reports_by_system["helix"]
        rows.append(
            {
                "budget": "unlimited" if budget == float("inf") else f"{budget / GB:.2g} GB",
                "cumulative_runtime_s": round(sum(r.total_runtime for r in reports), 1),
                "peak_storage_GB": round(max(r.storage_used for r in reports) / GB, 2),
            }
        )
    print(format_table(rows))
    print("\nWith no storage at all the session degenerates to recompute-everything;")
    print("a few GB already buys back most of the benefit of unlimited storage.")


def main() -> None:
    figure2_comparisons()
    storage_budget_sweep()


if __name__ == "__main__":
    main()
