"""Information extraction application: person-mention extraction from news articles.

The paper's second demo application is a structured-prediction pipeline over
unstructured text: tokenize -> token-level feature extraction -> structured
perceptron -> span evaluation -> mention formatting.  This example runs a
short iterative session on the synthetic news corpus, showing how feature
engineering (purple) and model (orange) iterations reuse the expensive
tokenization and feature extraction stages, and prints the mentions the final
model extracts.

Run with:  python examples/information_extraction.py
"""

from __future__ import annotations

import tempfile
from dataclasses import replace

from repro import HELIX, HelixSession
from repro.datagen.news import NewsConfig
from repro.workloads.ie_workload import IEVariant, build_ie_workflow


def show(result, label: str) -> None:
    print(f"\n== {label} ==")
    print(f"runtime: {result.runtime:.3f}s  reuse: {result.report.reuse_fraction():.0%}  "
          f"category: {result.report.change_category}")
    scores = {key: round(value, 3) for key, value in result.metrics.items()}
    print("span metrics:", scores)


def main() -> None:
    data = NewsConfig(n_train_docs=80, n_test_docs=20, sentences_per_doc=5, seed=17)
    base = IEVariant(data_config=data, epochs=3)
    session = HelixSession(workspace=tempfile.mkdtemp(prefix="helix_ie_"), strategy=HELIX)

    show(session.run(build_ie_workflow(base), description="initial pipeline"), "iteration 1: shape + context features")

    with_gazetteer = replace(base, use_gazetteer=True)
    show(
        session.run(build_ie_workflow(with_gazetteer), description="add gazetteer features"),
        "iteration 2: add name gazetteers (purple) — tokenization is reused",
    )

    longer_training = replace(with_gazetteer, epochs=8)
    show(
        session.run(build_ie_workflow(longer_training), description="train longer"),
        "iteration 3: more epochs (orange) — all feature extraction is reused",
    )

    final = replace(longer_training, include_mention_list=True, eval_splits=("train", "test"))
    result = session.run(build_ie_workflow(final), description="emit mention list")
    show(result, "iteration 4: add mention-list output (green) — nearly free")

    mentions = result.outputs.get("mentions", [])
    print(f"\nextracted {len(mentions)} distinct person mentions from the test articles; first 15:")
    for mention in mentions[:15]:
        print("  -", mention)

    print(f"\ncumulative runtime: {session.cumulative_runtime():.2f}s")
    print("version log:")
    print(session.versions.log())


if __name__ == "__main__":
    main()
