"""Census application: the full 10-iteration human-in-the-loop session from the paper.

Replays the Figure 2(b) workload — alternating data-pre-processing (purple),
ML (orange), and post-processing (green) changes — under HELIX and under the
unoptimized baseline, printing the per-iteration and cumulative runtimes plus
the metric trend across versions (the data behind the demo's Metrics tab).

Run with:  python examples/census_iterative.py [--iterations N]
"""

from __future__ import annotations

import argparse
import tempfile

from repro import HELIX, HELIX_UNOPTIMIZED, HelixSession
from repro.bench.reporting import cumulative_table, format_table
from repro.datagen.census import CensusConfig
from repro.versioning.diff import compare_versions, render_comparison
from repro.workloads.census_workload import census_workload


def run_system(strategy, workload, workspace):
    session = HelixSession(workspace=workspace, strategy=strategy)
    runtimes = []
    for spec in workload:
        result = session.run(spec.build(), description=spec.description, change_category=spec.category)
        runtimes.append(result.runtime)
    return session, runtimes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=10, help="number of workflow iterations to replay")
    parser.add_argument("--train-rows", type=int, default=1500, help="synthetic training-set size")
    args = parser.parse_args()

    data = CensusConfig(n_train=args.train_rows, n_test=max(100, args.train_rows // 5), seed=11)
    workload = census_workload(data, n_iterations=args.iterations)
    root = tempfile.mkdtemp(prefix="helix_census_")

    print(f"Replaying {len(workload)} Census iterations on {args.train_rows} synthetic rows...\n")
    helix_session, helix_runtimes = run_system(HELIX, workload, f"{root}/helix")
    unopt_session, unopt_runtimes = run_system(HELIX_UNOPTIMIZED, workload, f"{root}/unopt")

    rows = cumulative_table(
        {"helix": helix_runtimes, "unoptimized": unopt_runtimes},
        categories=workload.categories(),
        descriptions=[spec.description for spec in workload],
    )
    print(format_table(rows, columns=["iteration", "category", "description", "helix_iter", "helix_cum", "unoptimized_cum"]))

    total_helix = sum(helix_runtimes)
    total_unopt = sum(unopt_runtimes)
    print(f"\ncumulative runtime: helix={total_helix:.2f}s, unoptimized={total_unopt:.2f}s "
          f"({total_unopt / total_helix:.1f}x reduction)")

    print("\n== metric trend across versions (Metrics tab) ==")
    tracker = helix_session.metrics()
    metric = "test_accuracy" if "test_accuracy" in tracker.metric_names() else tracker.metric_names()[0]
    print(tracker.ascii_plot(metric))
    best = tracker.best(metric)
    print(f"\nbest version by {metric}: v{best.version_id} ({best.description})")

    print("\n== comparing the last two versions (Versions tab) ==")
    versions = helix_session.versions
    print(render_comparison(compare_versions(versions.get(len(versions) - 1), versions.latest())))


if __name__ == "__main__":
    main()
