"""Workflow versioning and comparison: the data behind the demo's GUI.

The Helix demo ships a browser UI with a version browser, a metrics tab, and a
git-style comparative view of two workflow versions.  This example drives the
underlying library features directly: it runs a few Census iterations, prints
the commit-log style version listing, plots a metric trend as ASCII, compares
two selected versions (code + DAG + metrics), rolls back to an earlier
version, and branches off it.

Run with:  python examples/workflow_versioning.py
"""

from __future__ import annotations

import tempfile
from dataclasses import replace

from repro import HELIX, HelixSession
from repro.datagen.census import CensusConfig
from repro.versioning.diff import compare_versions, render_comparison
from repro.workloads.census_workload import CensusVariant, build_census_workflow


def main() -> None:
    session = HelixSession(workspace=tempfile.mkdtemp(prefix="helix_versions_"), strategy=HELIX)
    base = CensusVariant(data_config=CensusConfig(n_train=1200, n_test=300, seed=23))

    session.run(build_census_workflow(base), description="initial version")
    session.run(build_census_workflow(replace(base, use_marital_status=True)), description="add marital status")
    session.run(build_census_workflow(replace(base, use_marital_status=True, reg_param=0.01)),
                description="lower regularization")
    session.run(build_census_workflow(replace(base, use_marital_status=True, reg_param=0.01,
                                              metrics=("accuracy", "f1"))),
                description="report F1 too")

    versions = session.versions
    print("== Versions tab: commit log ==")
    print(versions.log())

    print("\n== Metrics tab: accuracy across versions ==")
    tracker = session.metrics()
    print(tracker.ascii_plot("test_accuracy"))
    best = tracker.best("test_accuracy")
    print(f"best version: v{best.version_id} ({best.description!r})")

    print("\n== Comparative view: v2 vs v3 ==")
    print(render_comparison(compare_versions(versions.get(2), versions.get(3))))

    print("\n== Roll back to v2 and branch in a new direction ==")
    branched_workflow = versions.checkout(2)
    # The checked-out workflow is a plain Workflow object: edit it like any other.
    from repro.dsl import Learner

    branched_workflow.replace("incPred", Learner("income", model_type="naive_bayes"))
    result = session.run(branched_workflow, description="branch: naive Bayes on v2 features")
    print(f"branched version v{result.version.version_id} runtime={result.runtime:.3f}s "
          f"metrics={ {k: round(v, 4) for k, v in result.metrics.items()} }")
    print("\nfull log after branching:")
    print(versions.log())


if __name__ == "__main__":
    main()
