"""Figure 2(b): cumulative runtime on the Census classification task.

HELIX vs DeepDive vs KeystoneML (plus unoptimized HELIX, the demo's own
ablation).  As in the paper, DeepDive is only reported for the first two
iterations — its ML and evaluation components are not user-configurable, so
the later iterations of this workload cannot be expressed in it.
"""

from __future__ import annotations

import pytest

from repro.baselines.strategies import DEEPDIVE, HELIX, HELIX_UNOPTIMIZED, KEYSTONEML
from repro.bench.harness import run_simulated_comparison
from repro.bench.reporting import format_table
from repro.workloads.simulated import census_sim_workload, sim_defaults


def run_comparison():
    iterations = census_sim_workload()
    full = run_simulated_comparison(
        "figure2b_census", iterations, [HELIX, KEYSTONEML, HELIX_UNOPTIMIZED], defaults=sim_defaults()
    )
    # DeepDive: only the first two iterations are expressible (paper footnote).
    deepdive = run_simulated_comparison(
        "figure2b_census_deepdive", iterations[:2], [DEEPDIVE], defaults=sim_defaults()
    )
    full.reports_by_system["deepdive"] = deepdive.reports_by_system["deepdive"]
    return full


def test_figure2b_census_cumulative_runtime(benchmark, write_result):
    result = benchmark.pedantic(run_comparison, rounds=3, iterations=1)

    helix_total = result.cumulative("helix")
    keystone_total = result.cumulative("keystoneml")
    speedup = keystone_total / helix_total
    helix_first_two = sum(result.runtimes("helix")[:2])
    deepdive_first_two = sum(result.runtimes("deepdive")[:2])

    text = result.render() + (
        "\nNote: DeepDive covers only iterations 1-2 (its ML/eval stages are not"
        " user-configurable, as in the paper), so compare it at iteration 2:"
        f" deepdive={deepdive_first_two:.1f}s vs helix={helix_first_two:.1f}s"
        f" ({deepdive_first_two / helix_first_two:.2f}x)."
    )
    write_result("figure2b_census_cumulative_runtime", text)

    benchmark.extra_info["helix_cumulative_s"] = round(helix_total, 1)
    benchmark.extra_info["keystoneml_cumulative_s"] = round(keystone_total, 1)
    benchmark.extra_info["keystoneml_over_helix"] = round(speedup, 2)
    benchmark.extra_info["deepdive_over_helix_at_iteration_2"] = round(deepdive_first_two / helix_first_two, 2)

    # Paper: nearly an order of magnitude; we require a >5x gap.
    assert speedup > 5.0
    # DeepDive (first two iterations) is already above HELIX's first two iterations.
    assert deepdive_first_two > helix_first_two


def test_figure2b_iteration_type_breakdown(benchmark, write_result):
    """Average per-iteration runtime by change type for each system (§2.4 narrative)."""

    def run():
        return run_simulated_comparison(
            "figure2b_census_types", census_sim_workload(), [HELIX, KEYSTONEML], defaults=sim_defaults()
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    rows = []
    for system, reports in result.reports_by_system.items():
        by_category = {}
        for report in reports[1:]:
            by_category.setdefault(report.change_category, []).append(report.total_runtime)
        for category, values in sorted(by_category.items()):
            rows.append(
                {
                    "system": system,
                    "category": category,
                    "mean_runtime_s": round(sum(values) / len(values), 1),
                    "iterations": len(values),
                }
            )
    write_result("figure2b_iteration_type_breakdown", format_table(rows))

    helix_means = {row["category"]: row["mean_runtime_s"] for row in rows if row["system"] == "helix"}
    assert helix_means["green"] < helix_means["orange"] < helix_means["purple"]
