#!/usr/bin/env python3
"""Observability overhead benchmark: the metrics plane must stay under 2%.

The unified metrics plane (``repro.obs``) instruments every hot layer —
scheduler waves and node spans, storage reads/writes per tier and codec,
SQLite catalog operations, the optimizer solve, the incremental planner.
Instrumentation that costs real wall-clock time would poison every other
``BENCH_*.json`` number, so this benchmark pins the price down:

* the same cold census run (fresh workspace each repetition, so both modes
  do identical work) executes ``reps`` times with ``metrics=False`` (every
  instrument is the shared null object) and ``reps`` times with a live
  per-run :class:`~repro.obs.registry.MetricsRegistry`, interleaved so
  machine drift hits both modes equally;
* the comparison uses min-of-N wall clock — the minimum is the run with the
  least scheduler noise, which is the right estimator for "what does the
  code itself cost";
* because shared CI machines routinely jitter more than 2% run-to-run even
  for identical code, the bar is enforced twice: an *accounting* gate
  multiplies the microbenchmarked per-operation instrument cost by the
  number of events the run actually recorded (always enforced at exactly
  2% of wall, deterministic), and the *wall-clock* gate compares the two
  min-of-N times against ``max(2%, the machine's own same-code noise
  floor)`` measured from the disabled runs' spread;
* the run also fails when the enabled run's registry does not cover the
  instrumented layers (a rename that silently detaches a layer should
  fail here, not in production).

Run from the repo root::

    python benchmarks/bench_observability.py           # full scale
    python benchmarks/bench_observability.py --smoke   # CI: tiny data

Emits ``BENCH_observability.json`` at the repo root unless ``--no-write``.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import shutil
import sys
import tempfile
import time
from typing import Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.session import HelixSession  # noqa: E402
from repro.datagen.census import CensusConfig  # noqa: E402
from repro.obs.registry import LATENCY_BUCKETS, MetricsRegistry  # noqa: E402
from repro.workloads.census_workload import CensusVariant, build_census_workflow  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_observability.json")

#: The acceptance bar: enabling the full metrics plane may cost at most
#: this fraction of min-of-N wall clock on a cold census run.
MAX_OVERHEAD_FRACTION = 0.02

#: Every instrumented layer must contribute at least one series to an
#: enabled run's registry; a prefix disappearing means the layer came
#: unwired (e.g. a constructor stopped threading ``metrics=`` through).
REQUIRED_PREFIXES = (
    "repro_scheduler_",
    "repro_wave_seconds",
    "repro_node_seconds",
    "repro_run_span_seconds",
    "repro_store_",
    "repro_catalog_",
    "repro_optimizer_",
)


def per_op_costs() -> Dict[str, float]:
    """Microbenchmark the three instrument operations on a live registry.

    These are the only things the hot paths ever do (counter increments,
    histogram observes, span enter/exit); everything else in the plane runs
    at snapshot/export time, off the hot path.
    """
    # A tight span loop legitimately trips the slow-op detector (any jitter
    # is 10x a microsecond p95); silence it for the microbenchmark only.
    obs_logger = logging.getLogger("repro.obs")
    previous_level = obs_logger.level
    obs_logger.setLevel(logging.ERROR)
    registry = MetricsRegistry()
    counter = registry.counter("bench_ops_total", tenant="bench")
    histogram = registry.histogram(
        "bench_latency_seconds", buckets=LATENCY_BUCKETS, tenant="bench"
    )
    n = 50_000
    started = time.perf_counter()
    for _ in range(n):
        counter.inc()
    counter_s = (time.perf_counter() - started) / n
    started = time.perf_counter()
    for i in range(n):
        histogram.observe(0.0003 * (i % 11))
    observe_s = (time.perf_counter() - started) / n
    spans = 5_000
    started = time.perf_counter()
    for _ in range(spans):
        with registry.span("bench"):
            pass
    span_s = (time.perf_counter() - started) / spans
    obs_logger.setLevel(previous_level)
    return {"counter_s": counter_s, "observe_s": observe_s, "span_s": span_s}


def event_counts(snapshot: List[Dict]) -> Dict[str, int]:
    """How many instrument operations a run's snapshot implies.

    Amount-valued counters (``*_bytes_total``, ``*_seconds_total``) are
    skipped — their value is a sum, not a call count, and each sits next to
    an event-valued counter incremented by the same code path.  Remaining
    counter values overcount when a single ``inc(n)`` added more than one
    (conservative, in the right direction); gauge sets are approximated by
    the counter total since every gauge write in the codebase sits next to
    a counter increment on the same code path.
    """
    counter_events = 0
    observe_events = 0
    span_events = 0
    for series in snapshot:
        if series["type"] == "counter":
            if "bytes" in series["name"] or "seconds" in series["name"]:
                continue
            counter_events += int(series["value"])
        elif series["type"] == "histogram":
            if "span" in series["name"] or series["name"] in (
                "repro_wave_seconds", "repro_node_seconds",
            ):
                span_events += int(series["count"])
            else:
                observe_events += int(series["count"])
    return {
        "counter_events": counter_events * 2,  # + the neighbouring gauge sets
        "observe_events": observe_events,
        "span_events": span_events,
    }


def run_once(variant: CensusVariant, partitions: int,
             registry: "MetricsRegistry | bool") -> Dict[str, object]:
    """One cold census run in a throwaway workspace; returns wall + snapshot."""
    root = tempfile.mkdtemp(prefix="bench_obs_")
    try:
        started = time.perf_counter()
        session = HelixSession(
            os.path.join(root, "ws"), partitions=partitions,
            store_backend="tiered", memory_tier_mb=256, metrics=registry,
        )
        session.run(build_census_workflow(variant))
        wall = time.perf_counter() - started
        snapshot: List[Dict] = []
        if isinstance(registry, MetricsRegistry):
            snapshot = registry.snapshot()
        return {"wall_s": wall, "snapshot": snapshot}
    finally:
        shutil.rmtree(root, ignore_errors=True)


def measure(variant: CensusVariant, partitions: int, reps: int) -> Dict[str, object]:
    """Interleaved min-of-N comparison of metrics-off vs metrics-on runs."""
    costs = per_op_costs()
    off_walls: List[float] = []
    on_walls: List[float] = []
    snapshot: List[Dict] = []
    # One throwaway warm-up run per mode so imports and datagen caches are
    # paid before anything is timed.
    run_once(variant, partitions, False)
    run_once(variant, partitions, MetricsRegistry())
    for _ in range(reps):
        off_walls.append(run_once(variant, partitions, False)["wall_s"])
        result = run_once(variant, partitions, MetricsRegistry())
        on_walls.append(result["wall_s"])
        snapshot = result["snapshot"]
    min_off = min(off_walls)
    min_on = min(on_walls)
    overhead = (min_on - min_off) / min_off if min_off > 0 else 0.0
    # The machine's own noise floor: how far apart two *identical* (both
    # disabled) runs land.  An apparent overhead inside this band is not a
    # detection, it is jitter.
    spread = sorted(off_walls)
    noise = (spread[1] - spread[0]) / spread[0] if len(spread) > 1 and spread[0] > 0 else 0.0
    events = event_counts(snapshot)
    accounted_s = (
        events["counter_events"] * costs["counter_s"]
        + events["observe_events"] * costs["observe_s"]
        + events["span_events"] * costs["span_s"]
    )
    accounted = accounted_s / min_on if min_on > 0 else 0.0
    return {
        "reps": reps,
        "disabled_walls_s": [round(w, 4) for w in off_walls],
        "enabled_walls_s": [round(w, 4) for w in on_walls],
        "min_disabled_s": round(min_off, 4),
        "min_enabled_s": round(min_on, 4),
        "overhead_fraction": round(overhead, 4),
        "noise_floor_fraction": round(noise, 4),
        "per_op_costs_us": {k: round(v * 1e6, 3) for k, v in costs.items()},
        "events": events,
        "accounted_overhead_fraction": round(accounted, 6),
        "series_count": len(snapshot),
        "series_names": sorted({series["name"] for series in snapshot}),
    }


def check(result: Dict[str, object], failures: List[str]) -> None:
    if result["accounted_overhead_fraction"] > MAX_OVERHEAD_FRACTION:
        failures.append(
            f"accounted instrumentation cost "
            f"{result['accounted_overhead_fraction']:.2%} of wall exceeds the "
            f"{MAX_OVERHEAD_FRACTION:.0%} bar "
            f"({result['events']} events at {result['per_op_costs_us']} µs/op)"
        )
    wall_bar = max(MAX_OVERHEAD_FRACTION, result["noise_floor_fraction"])
    if result["overhead_fraction"] > wall_bar:
        failures.append(
            f"metrics wall-clock overhead {result['overhead_fraction']:.2%} "
            f"exceeds the bar ({wall_bar:.2%} = max(2%, same-code noise "
            f"floor); min disabled {result['min_disabled_s']}s, "
            f"min enabled {result['min_enabled_s']}s)"
        )
    names = result["series_names"]
    for prefix in REQUIRED_PREFIXES:
        if not any(name.startswith(prefix) for name in names):
            failures.append(f"no series with prefix {prefix!r} — layer unwired?")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="observability overhead benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: tiny data, fewer repetitions")
    parser.add_argument("--scale", type=int, default=8000,
                        help="training rows (full mode)")
    parser.add_argument("--partitions", type=int, default=4, help="chunk count")
    parser.add_argument("--reps", type=int, default=None,
                        help="timed repetitions per mode (default 5, smoke 3)")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_observability.json and benchmarks/results/")
    args = parser.parse_args(argv)

    scale = 2000 if args.smoke else args.scale
    reps = args.reps if args.reps is not None else (3 if args.smoke else 5)
    variant = CensusVariant(
        data_config=CensusConfig(n_train=scale, n_test=max(200, scale // 10))
    )

    failures: List[str] = []
    result = measure(variant, args.partitions, reps)
    check(result, failures)

    payload = {
        "benchmark": "observability",
        "mode": "smoke" if args.smoke else "full",
        "scale": scale,
        "partitions": args.partitions,
        "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
        **result,
        "ok": not failures,
    }
    report = json.dumps(payload, indent=2, sort_keys=True)
    print(report)
    if not args.no_write:
        try:
            with open(BENCH_JSON, "w") as handle:
                handle.write(report + "\n")
            os.makedirs(RESULTS_DIR, exist_ok=True)
            name = "observability_smoke" if args.smoke else "observability_overhead"
            with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
                handle.write(report + "\n")
        except OSError:
            pass

    if failures:
        print("\nFAIL:\n" + "\n".join(f"  - {failure}" for failure in failures), file=sys.stderr)
        return 1
    print("\nOK: observability benchmark passed "
          f"(overhead {result['overhead_fraction']:.2%}, "
          f"{result['series_count']} series)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
