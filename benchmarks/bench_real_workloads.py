"""End-to-end real-engine comparison at laptop scale (small data, real operators).

The figure benchmarks replay paper-scale costs through the simulator; this
module runs the *actual* operators over the synthetic datasets under each
strategy, demonstrating that the same qualitative ordering (HELIX below the
never-reuse systems, post-processing iterations nearly free) holds when every
cost is measured rather than modeled.
"""

from __future__ import annotations

import pytest

from repro.baselines.strategies import HELIX, HELIX_UNOPTIMIZED, KEYSTONEML
from repro.bench.harness import run_real_comparison
from repro.bench.reporting import format_table
from repro.datagen.census import CensusConfig
from repro.datagen.news import NewsConfig
from repro.workloads.census_workload import census_workload
from repro.workloads.ie_workload import ie_workload

CENSUS_DATA = CensusConfig(n_train=1500, n_test=300, seed=11)
NEWS_DATA = NewsConfig(n_train_docs=60, n_test_docs=15, sentences_per_doc=5, seed=11)


def test_real_census_workload_comparison(benchmark, tmp_path_factory, write_result):
    workload = census_workload(CENSUS_DATA)

    def run():
        root = str(tmp_path_factory.mktemp("real_census"))
        return run_real_comparison(workload, [HELIX, KEYSTONEML, HELIX_UNOPTIMIZED], workspace_root=root)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("real_census_cumulative_runtime", result.render())

    benchmark.extra_info["keystoneml_over_helix"] = round(result.speedup_over("keystoneml"), 2)
    assert result.cumulative("helix") < result.cumulative("keystoneml")
    assert result.cumulative("helix") < result.cumulative("helix_unopt")

    # Accuracy is identical across systems: reuse must not change results.
    def final_accuracy(system):
        metrics = result.metrics(system)[-1]
        return next(value for key, value in metrics.items() if key.endswith("test_accuracy"))

    assert final_accuracy("helix") == pytest.approx(final_accuracy("keystoneml"), abs=1e-9)


def test_real_ie_workload_helix_profile(benchmark, tmp_path_factory, write_result):
    workload = ie_workload(NEWS_DATA, n_iterations=6)

    def run():
        root = str(tmp_path_factory.mktemp("real_ie"))
        return run_real_comparison(workload, [HELIX, HELIX_UNOPTIMIZED], workspace_root=root)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    reports = result.reports_by_system["helix"]
    rows = [
        {
            "iteration": report.iteration + 1,
            "category": report.change_category,
            "helix_runtime_s": round(report.total_runtime, 3),
            "unopt_runtime_s": round(result.reports_by_system["helix_unopt"][report.iteration].total_runtime, 3),
            "reuse": round(report.reuse_fraction(), 2),
        }
        for report in reports
    ]
    write_result("real_ie_iteration_profile", format_table(rows))
    assert result.cumulative("helix") < result.cumulative("helix_unopt")
