"""Figure 2(a): cumulative runtime on the information-extraction task, HELIX vs DeepDive.

Regenerates the figure's data as a table (one row per iteration, cumulative
runtime per system) from the paper-scale cost-annotated IE workload, and
checks the headline claim: HELIX's cumulative runtime is well below
DeepDive's (the paper reports roughly 60% lower).
"""

from __future__ import annotations

import pytest

from repro.baselines.strategies import DEEPDIVE, HELIX, HELIX_UNOPTIMIZED
from repro.bench.harness import run_simulated_comparison
from repro.workloads.simulated import ie_sim_workload, sim_defaults

SYSTEMS = [HELIX, DEEPDIVE, HELIX_UNOPTIMIZED]


def run_comparison():
    return run_simulated_comparison(
        "figure2a_ie", ie_sim_workload(), SYSTEMS, defaults=sim_defaults()
    )


def test_figure2a_ie_cumulative_runtime(benchmark, write_result):
    result = benchmark.pedantic(run_comparison, rounds=3, iterations=1)
    write_result("figure2a_ie_cumulative_runtime", result.render())

    helix_total = result.cumulative("helix")
    deepdive_total = result.cumulative("deepdive")
    reduction = 1.0 - helix_total / deepdive_total
    benchmark.extra_info["helix_cumulative_s"] = round(helix_total, 1)
    benchmark.extra_info["deepdive_cumulative_s"] = round(deepdive_total, 1)
    benchmark.extra_info["helix_reduction_vs_deepdive"] = round(reduction, 3)

    # Shape assertions (paper: ~60% reduction; we accept anything substantial).
    assert reduction > 0.40
    assert result.cumulative("helix_unopt") > deepdive_total  # never-reuse is the worst


def test_figure2a_helix_iteration_profile(benchmark, write_result):
    """Per-iteration runtimes for HELIX, colored by change type (the bar heights)."""

    def helix_only():
        return run_simulated_comparison("figure2a_helix", ie_sim_workload(), [HELIX], defaults=sim_defaults())

    result = benchmark.pedantic(helix_only, rounds=3, iterations=1)
    reports = result.reports_by_system["helix"]
    rows = [
        {
            "iteration": report.iteration + 1,
            "category": report.change_category,
            "runtime_s": round(report.total_runtime, 1),
            "reuse_fraction": round(report.reuse_fraction(), 2),
        }
        for report in reports
    ]
    from repro.bench.reporting import format_table

    write_result("figure2a_helix_iteration_profile", format_table(rows))
    green = [r.total_runtime for r in reports if r.change_category == "green"]
    assert max(green) < 0.05 * reports[0].total_runtime
