"""Figure 1(b): the optimized execution plan for the modified Census workflow.

Benchmarks the compile → slice → change-detect → plan pipeline (the part of
HELIX that must feel interactive in the IDE) on the real Census workflow, and
regenerates the plan report: which operators are loaded from disk, which are
recomputed, which are pruned — the drums and grayed-out boxes of Figure 1(b).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.session import HelixSession
from repro.datagen.census import CensusConfig
from repro.graph.dag import NodeState
from repro.workloads.census_workload import CensusVariant, build_census_workflow

DATA = CensusConfig(n_train=1500, n_test=300, seed=11)


@pytest.fixture(scope="module")
def warmed_session(tmp_path_factory):
    """A session that has already executed the initial Census workflow."""
    workspace = str(tmp_path_factory.mktemp("figure1b"))
    session = HelixSession(workspace=workspace)
    session.run(build_census_workflow(CensusVariant(data_config=DATA)), description="initial")
    return session


def test_figure1b_optimized_plan_for_modified_workflow(benchmark, warmed_session, write_result):
    modified = build_census_workflow(CensusVariant(data_config=DATA, use_marital_status=True))

    plan = benchmark(lambda: warmed_session.plan(modified))

    lines = [
        "Optimized plan for the modified Census workflow (iteration 2, adds `ms`):",
        plan.to_ascii(),
        "",
        f"loaded:   {sorted(plan.loaded_nodes())}",
        f"computed: {sorted(plan.computed_nodes())}",
        f"pruned:   {sorted(plan.pruned_nodes())}",
        f"estimated iteration cost: {plan.estimated_cost:.3f}s",
    ]
    write_result("figure1b_optimized_plan", "\n".join(lines))

    assert plan.state_of("ms") is NodeState.COMPUTE
    assert plan.state_of("income") is NodeState.COMPUTE
    assert plan.state_of("rows") in (NodeState.LOAD, NodeState.PRUNE)
    assert "race" not in plan.states  # sliced away, as in the grayed-out operators


def test_figure1b_planning_overhead_is_interactive(benchmark, warmed_session):
    """Planning latency itself must be negligible next to operator runtimes."""
    modified = build_census_workflow(CensusVariant(data_config=DATA, reg_param=0.01))
    result = benchmark(lambda: warmed_session.plan(modified))
    assert result.estimated_cost >= 0.0
    # The planner handles this 15-node DAG in well under a second.
    assert benchmark.stats["mean"] < 1.0
