#!/usr/bin/env python3
"""Multi-tenant service benchmark: shared cost-aware cache vs isolated stores.

Two experiments:

1. **Sharing** — N concurrent tenants each replay the census (and, in full
   mode, the IE) iteration sequence through one :class:`WorkflowService`.
   The shared-cache deployment is compared against the isolated-stores
   baseline (same service, same traffic, per-tenant private stores) on
   aggregate throughput, p50/p95 request latency, cumulative compute
   seconds, and cross-tenant cache hit rate.
2. **Eviction** (full mode) — under a constrained cache budget, the
   cost-aware policy (evict the lowest recompute-cost-saved per byte) is
   compared against plain LRU on recompute seconds saved by cache hits.

Run from the repo root::

    python benchmarks/bench_service.py             # full comparison
    python benchmarks/bench_service.py --smoke     # CI: 2 tenants, tiny data

Exit code is non-zero when the run shows a regression: a zero cache hit rate
in smoke mode, or (full mode) the shared cache failing the ISSUE-2
acceptance bar (>= 1.5x throughput or >= 30% cumulative-compute reduction)
or cost-aware eviction losing to LRU.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.datagen.census import CensusConfig  # noqa: E402
from repro.datagen.news import NewsConfig  # noqa: E402
from repro.service import CacheConfig, ServiceClient, ServiceConfig, WorkflowService  # noqa: E402
from repro.workloads.census_workload import census_workload  # noqa: E402
from repro.workloads.ie_workload import ie_workload  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def build_spec(workload: str, scale: int, iterations: int):
    if workload == "census":
        return census_workload(
            CensusConfig(n_train=scale, n_test=max(60, scale // 5), seed=11), n_iterations=iterations
        )
    return ie_workload(
        NewsConfig(
            n_train_docs=max(12, scale // 20), n_test_docs=max(6, scale // 80),
            sentences_per_doc=5, seed=11,
        ),
        n_iterations=iterations,
    )


def drive(
    root: str,
    workload: str,
    n_tenants: int,
    iterations: int,
    scale: int,
    workers: int,
    shared: bool,
    cache_config: Optional[CacheConfig] = None,
) -> Dict[str, object]:
    """Run one deployment over N tenants' traffic; return its metrics."""
    config = ServiceConfig(
        n_workers=workers,
        shared_cache=shared,
        cache=cache_config or CacheConfig(),
    )
    # One spec serves every tenant: each build callable constructs a fresh
    # Workflow.  The sequences are finite (10 steps); clamp, don't crash.
    spec = build_spec(workload, scale, iterations)
    iterations = min(iterations, len(spec.iterations))
    with WorkflowService(root, config) as service:
        clients = [ServiceClient(service, f"tenant{index}") for index in range(n_tenants)]
        started = time.perf_counter()
        tickets = []
        # Iteration-major interleaving: every tenant is live at once, each
        # advancing through its own copy of the workflow sequence.
        for iteration in range(iterations):
            step = spec.iterations[iteration]
            for client in clients:
                tickets.append(
                    client.submit(
                        build=step.build, description=step.description, change_category=step.category
                    )
                )
        errors = 0
        for ticket in tickets:
            ticket.wait()
            if ticket.error is not None:
                errors += 1
        wall = time.perf_counter() - started
        summary = service.summary()
    metrics: Dict[str, object] = {
        "deployment": "shared" if shared else "isolated",
        "workload": workload,
        "tenants": n_tenants,
        "requests": len(tickets),
        "errors": errors,
        "wall_s": round(wall, 3),
        "throughput_rps": round(len(tickets) / wall, 3) if wall > 0 else 0.0,
        "p50_latency_s": summary["p50_latency_s"],
        "p95_latency_s": summary["p95_latency_s"],
        "compute_seconds": summary["compute_seconds"],
        "cache_hit_rate": summary["cache_hit_rate"],
    }
    if shared:
        cache = summary["cache"]
        metrics["cross_tenant_hits"] = cache["cross_tenant_hits"]
        metrics["cross_tenant_hit_fraction"] = summary["cross_tenant_hit_fraction"]
        metrics["evictions"] = cache["evictions"]
        metrics["recompute_seconds_saved"] = cache["recompute_seconds_saved"]
    return metrics


def compare_sharing(
    workload: str, n_tenants: int, iterations: int, scale: int, workers: int
) -> Dict[str, object]:
    """Shared cache vs isolated stores over identical traffic."""
    roots = []
    results = {}
    for shared in (False, True):
        root = tempfile.mkdtemp(prefix=f"bench_service_{workload}_{'shared' if shared else 'iso'}_")
        roots.append(root)
        results["shared" if shared else "isolated"] = drive(
            root, workload, n_tenants, iterations, scale, workers, shared
        )
    for root in roots:
        shutil.rmtree(root, ignore_errors=True)
    shared, isolated = results["shared"], results["isolated"]
    speedup = (
        shared["throughput_rps"] / isolated["throughput_rps"]
        if isolated["throughput_rps"] else float("inf")
    )
    reduction = (
        1.0 - shared["compute_seconds"] / isolated["compute_seconds"]
        if isolated["compute_seconds"] else 0.0
    )
    return {
        "workload": workload,
        "isolated": isolated,
        "shared": shared,
        "throughput_speedup": round(speedup, 2),
        "compute_reduction": round(reduction, 3),
    }


def compare_eviction(
    iterations: int, scale: int, budget_fraction: float = 0.4
) -> Dict[str, object]:
    """Cost-aware vs LRU eviction under a constrained budget, same traffic.

    One tenant replays the census sequence twice; the second pass revisits
    every signature, so whichever policy kept the most valuable artifacts
    saves the most recompute seconds.  The budget is sized as a fraction of
    the unconstrained run's footprint, measured first.
    """
    probe_root = tempfile.mkdtemp(prefix="bench_service_probe_")
    probe = drive(probe_root, "census", 1, iterations, scale, 1, shared=True)
    probe_cache_dir = os.path.join(probe_root, "cache")
    footprint = sum(
        os.path.getsize(os.path.join(probe_cache_dir, name))
        for name in os.listdir(probe_cache_dir)
        if name.endswith(".pkl")
    )
    shutil.rmtree(probe_root, ignore_errors=True)
    budget = footprint * budget_fraction

    results = {}
    for policy in ("lru", "cost"):
        root = tempfile.mkdtemp(prefix=f"bench_service_evict_{policy}_")
        config = ServiceConfig(
            n_workers=1,
            shared_cache=True,
            cache=CacheConfig(budget_bytes=budget, eviction=policy),
        )
        with WorkflowService(root, config) as service:
            client = ServiceClient(service, "tenant0")
            for _pass in range(2):
                spec = build_spec("census", scale, iterations)
                for step in spec.iterations:
                    client.run(
                        build=step.build, description=step.description
                    )
            summary = service.summary()
            cache = summary["cache"]
            results[policy] = {
                "policy": policy,
                "budget_bytes": round(budget),
                "compute_seconds": summary["compute_seconds"],
                "cache_hit_rate": summary["cache_hit_rate"],
                "evictions": cache["evictions"],
                "recompute_seconds_saved": cache["recompute_seconds_saved"],
            }
        shutil.rmtree(root, ignore_errors=True)
    return {"budget_bytes": round(budget), "lru": results["lru"], "cost": results["cost"]}


def render(title: str, payload: Dict[str, object]) -> str:
    return f"===== {title} =====\n{json.dumps(payload, indent=2)}"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="multi-tenant service benchmark")
    parser.add_argument("--smoke", action="store_true", help="CI mode: 2 tenants, tiny data, census only")
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--iterations", type=int, default=8)
    parser.add_argument("--scale", type=int, default=600)
    # A pool smaller than the tenant count is the realistic service shape
    # (bounded workers are the point of the dispatcher) and is what lets
    # sharing shine: lockstep cold starts would otherwise race every
    # tenant into computing the same brand-new signatures concurrently.
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--no-write", action="store_true", help="skip writing benchmarks/results/")
    args = parser.parse_args(argv)

    if args.smoke:
        tenants, iterations, scale, workers = 2, 4, 200, 2
        workloads = ["census"]
    else:
        tenants, iterations, scale, workers = args.tenants, args.iterations, args.scale, args.workers
        workloads = ["census", "ie"]

    lines: List[str] = []
    failures: List[str] = []

    for workload in workloads:
        comparison = compare_sharing(workload, tenants, iterations, scale, workers)
        lines.append(render(f"shared vs isolated: {workload}", comparison))
        hit_rate = comparison["shared"]["cache_hit_rate"]
        if hit_rate <= 0.0:
            failures.append(f"{workload}: shared cache hit rate is zero")
        # Same-tenant iteration reuse alone can keep the overall hit rate
        # positive; the sharing regression guard is cross-tenant hits.
        if comparison["shared"]["cross_tenant_hits"] <= 0:
            failures.append(f"{workload}: no cross-tenant cache hits — sharing is broken")
        if comparison["shared"].get("errors"):
            failures.append(f"{workload}: {comparison['shared']['errors']} failed requests")
        if workload == "census" and not args.smoke:
            meets_throughput = comparison["throughput_speedup"] >= 1.5
            meets_compute = comparison["compute_reduction"] >= 0.30
            if not (meets_throughput or meets_compute):
                failures.append(
                    f"census: shared cache met neither bar "
                    f"(speedup {comparison['throughput_speedup']}x, "
                    f"compute reduction {comparison['compute_reduction']:.0%})"
                )

    if not args.smoke:
        eviction = compare_eviction(iterations=min(iterations, 10), scale=scale)
        lines.append(render("eviction: cost-aware vs LRU", eviction))
        if eviction["cost"]["recompute_seconds_saved"] < eviction["lru"]["recompute_seconds_saved"]:
            failures.append(
                "eviction: cost-aware saved fewer recompute seconds than LRU "
                f"({eviction['cost']['recompute_seconds_saved']:.3f}s vs "
                f"{eviction['lru']['recompute_seconds_saved']:.3f}s)"
            )

    report = "\n\n".join(lines)
    print(report)
    if not args.no_write:
        try:
            os.makedirs(RESULTS_DIR, exist_ok=True)
            name = "service_smoke" if args.smoke else "service_comparison"
            with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
                handle.write(report + "\n")
        except OSError:
            pass

    if failures:
        print("\nFAIL:\n" + "\n".join(f"  - {failure}" for failure in failures), file=sys.stderr)
        return 1
    print("\nOK: service benchmark passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
