#!/usr/bin/env python3
"""Partitioned data-parallel execution benchmark: serial vs wavefront vs partitioned.

The workload that matters here is the *linear dense census pipeline*
(``build_dense_census_workflow``): source → scan → dense batch featurize →
label → assemble → learn → predict → evaluate.  Every wave has width 1, so
the wavefront scheduler's inter-node parallelism cannot help at all — the
pipeline is the worst case PR 1 left open.  Intra-operator partitioning
splits the collections into N chunks and runs the NumPy-heavy featurizer
(and every other data-parallel operator) once per chunk; NumPy's kernels
release the GIL, so the chunks genuinely run in parallel on the thread
backend.

Three engines run the identical pipeline in fresh workspaces:

* ``serial``       — SerialBackend, no partitioning (the PR 0 engine);
* ``wavefront``    — ThreadPoolBackend(4), no partitioning (the PR 1 engine);
* ``partitioned``  — ThreadPoolBackend(4) with ``--partitions 4``.

The run fails (non-zero exit) when partitioned execution is *slower* than
the wavefront engine, when its metrics differ from the serial engine's in
any digit, or — on hosts with >= 4 CPUs — when the speedup is below the
2x acceptance bar.  The bar scales down on smaller hosts because thread
parallelism cannot beat the core count; the report always states the
machine's core count next to the measured speedup.

Run from the repo root::

    python benchmarks/bench_partitioned.py            # full comparison (census + IE)
    python benchmarks/bench_partitioned.py --smoke    # CI: dense pipeline only, tiny data
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.session import HelixSession  # noqa: E402
from repro.datagen.census import CensusConfig  # noqa: E402
from repro.datagen.news import NewsConfig  # noqa: E402
from repro.workloads.census_workload import build_dense_census_workflow, census_workload  # noqa: E402
from repro.workloads.ie_workload import ie_workload  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: Worker / partition count used by the parallel engines.
N_WORKERS = 4

ENGINES = {
    "serial": dict(backend="serial"),
    "wavefront": dict(backend="thread", parallelism=N_WORKERS),
    "partitioned": dict(backend="thread", parallelism=N_WORKERS, partitions=N_WORKERS),
}


def run_once(build, engine: str) -> Dict[str, object]:
    """One cold run of ``build()`` in a fresh workspace; returns wall + metrics.

    ``storage_budget=0`` disables materialization so all three engines pay
    for pure execution (and nothing else) — the comparison stays apples to
    apples and repeats stay cold.
    """
    session = HelixSession(tempfile.mkdtemp(prefix=f"bench_part_{engine}_"),
                           storage_budget=0.0, **ENGINES[engine])
    started = time.perf_counter()
    result = session.run(build())
    wall = time.perf_counter() - started
    return {"wall_s": wall, "metrics": dict(result.report.metrics)}


def best_of(build, engine: str, repeats: int) -> Dict[str, object]:
    runs = [run_once(build, engine) for _ in range(repeats)]
    best = min(runs, key=lambda run: run["wall_s"])
    return {"wall_s": round(best["wall_s"], 4), "metrics": best["metrics"]}


def dense_comparison(scale: int, embed_dim: int, passes: int, repeats: int) -> Dict[str, object]:
    """The acceptance experiment: the linear dense census pipeline."""
    config = CensusConfig(n_train=scale, n_test=max(100, scale // 5), seed=7)

    def build():
        return build_dense_census_workflow(config, embed_dim=embed_dim, passes=passes)

    results = {engine: best_of(build, engine, repeats) for engine in ENGINES}
    wavefront = results["wavefront"]["wall_s"]
    partitioned = results["partitioned"]["wall_s"]
    return {
        "workload": "census_dense (linear pipeline)",
        "scale": scale,
        "engines": results,
        "speedup_vs_wavefront": round(wavefront / partitioned, 3) if partitioned else float("inf"),
        "speedup_vs_serial": (
            round(results["serial"]["wall_s"] / partitioned, 3) if partitioned else float("inf")
        ),
    }


def workload_comparison(workload: str, scale: int, iterations: int) -> Dict[str, object]:
    """Full census / IE iteration sequences through every engine (full mode).

    These DAGs are bushy, so the interesting number is how partitioning
    stacks on top of wavefront parallelism; the correctness check is that
    every engine reports identical final-iteration metrics.
    """
    if workload == "census":
        spec = census_workload(
            CensusConfig(n_train=scale, n_test=max(100, scale // 5), seed=11), n_iterations=iterations
        )
    else:
        spec = ie_workload(
            NewsConfig(n_train_docs=max(16, scale // 25), n_test_docs=max(6, scale // 100),
                       sentences_per_doc=5, seed=11),
            n_iterations=iterations,
        )
    results: Dict[str, Dict[str, object]] = {}
    for engine, knobs in ENGINES.items():
        session = HelixSession(tempfile.mkdtemp(prefix=f"bench_part_{workload}_{engine}_"), **knobs)
        started = time.perf_counter()
        metrics: Dict[str, float] = {}
        for step in spec.iterations:
            metrics = dict(session.run(step.build(), description=step.description).report.metrics)
        results[engine] = {"wall_s": round(time.perf_counter() - started, 4), "metrics": metrics}
    return {"workload": workload, "iterations": len(spec.iterations), "engines": results}


def render(title: str, payload: Dict[str, object]) -> str:
    return f"===== {title} =====\n{json.dumps(payload, indent=2)}"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="partitioned execution benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: dense pipeline only, tiny data, never-slower bar")
    parser.add_argument("--scale", type=int, default=6000, help="census training rows (full mode)")
    parser.add_argument("--iterations", type=int, default=3, help="workload iterations (full mode)")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats, best-of")
    parser.add_argument("--require-speedup", type=float, default=None,
                        help="override the partitioned-vs-wavefront bar")
    parser.add_argument("--no-write", action="store_true", help="skip writing benchmarks/results/")
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    if args.smoke:
        scale, embed_dim, passes, repeats = 2500, 192, 5, 2
    else:
        scale, embed_dim, passes, repeats = args.scale, 256, 6, args.repeats

    # Thread parallelism cannot beat the machine's core count: enforce the
    # 2x acceptance bar only where the hardware can express it.  Multi-core
    # hosts below N_WORKERS must still never lose to the wavefront engine;
    # a single-core host can only be asked not to be materially slower
    # (timeshared threads leave speedups at the mercy of scheduler noise).
    if args.require_speedup is not None:
        bar = args.require_speedup
    elif not args.smoke and cpus >= N_WORKERS:
        bar = 2.0
    elif cpus >= 2:
        bar = 1.0
    else:
        bar = 0.95

    lines: List[str] = [f"host: {cpus} CPUs, engines use {N_WORKERS} workers/partitions, bar {bar}x"]
    failures: List[str] = []

    dense = dense_comparison(scale, embed_dim, passes, repeats)
    lines.append(render("linear dense census pipeline", dense))
    engines = dense["engines"]
    if engines["partitioned"]["metrics"] != engines["serial"]["metrics"]:
        failures.append("dense: partitioned metrics differ from serial metrics")
    if engines["wavefront"]["metrics"] != engines["serial"]["metrics"]:
        failures.append("dense: wavefront metrics differ from serial metrics")
    if dense["speedup_vs_wavefront"] < bar:
        failures.append(
            f"dense: partitioned speedup {dense['speedup_vs_wavefront']}x over wavefront "
            f"is below the {bar}x bar ({cpus} CPUs)"
        )

    if not args.smoke:
        for workload in ("census", "ie"):
            comparison = workload_comparison(workload, scale // 6 if workload == "census" else scale, args.iterations)
            lines.append(render(f"iteration sequence: {workload}", comparison))
            by_engine = comparison["engines"]
            if by_engine["partitioned"]["metrics"] != by_engine["serial"]["metrics"]:
                failures.append(f"{workload}: partitioned metrics differ from serial metrics")

    report = "\n\n".join(lines)
    print(report)
    if not args.no_write:
        try:
            os.makedirs(RESULTS_DIR, exist_ok=True)
            name = "partitioned_smoke" if args.smoke else "partitioned_comparison"
            with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
                handle.write(report + "\n")
        except OSError:
            pass

    if failures:
        print("\nFAIL:\n" + "\n".join(f"  - {failure}" for failure in failures), file=sys.stderr)
        return 1
    print("\nOK: partitioned benchmark passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
