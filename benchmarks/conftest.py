"""Shared helpers for the benchmark suite.

Every figure/table benchmark both (a) measures its runtime via
pytest-benchmark and (b) regenerates the corresponding report table, printing
it and writing it under ``benchmarks/results/`` so the numbers can be compared
against the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    """Write (and echo) a named report produced by a benchmark."""

    def _write(name: str, text: str) -> str:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"\n===== {name} =====\n{text}\n")
        return path

    return _write
