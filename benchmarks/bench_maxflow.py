"""PERF-FLOW: scalability of the max-flow solver behind the recomputation optimizer.

The recomputation problem is PTIME via a reduction to project selection /
min-cut; these benchmarks measure the constant factors of our Dinic
implementation on project-selection-shaped networks of growing size, and
compare against networkx's preflow-push as a reference point.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.optimizer.maxflow import FlowNetwork


def psp_shaped_network(n_items, seed=0):
    """Source -> positive items -> negative items -> sink, like our PSP graphs."""
    rng = np.random.default_rng(seed)
    network = FlowNetwork(n_items + 2)
    source, sink = 0, 1
    profits = rng.integers(-50, 50, size=n_items)
    for index, profit in enumerate(profits, start=2):
        if profit > 0:
            network.add_edge(source, index, float(profit))
        elif profit < 0:
            network.add_edge(index, sink, float(-profit))
    # Random prerequisite edges between items (acyclic: higher -> lower index).
    infinite = float(np.abs(profits).sum() + 1)
    for item in range(3, n_items + 2):
        for _ in range(3):
            requirement = int(rng.integers(2, item))
            network.add_edge(item, requirement, infinite)
    return network, source, sink


@pytest.mark.parametrize("n_items", [100, 500, 2000])
def test_dinic_scales_on_psp_networks(benchmark, n_items):
    def build_and_solve():
        network, source, sink = psp_shaped_network(n_items, seed=n_items)
        return network.max_flow(source, sink)

    flow = benchmark(build_and_solve)
    assert flow >= 0.0


def test_dinic_matches_networkx_on_medium_network(benchmark):
    """Correctness + relative speed against the library implementation."""
    rng = np.random.default_rng(42)
    n_nodes = 120
    edges = []
    for u in range(n_nodes):
        for _ in range(6):
            v = int(rng.integers(0, n_nodes))
            if u != v:
                edges.append((u, v, float(rng.integers(1, 30))))

    graph = nx.DiGraph()
    graph.add_nodes_from(range(n_nodes))
    for u, v, capacity in edges:
        if graph.has_edge(u, v):
            graph[u][v]["capacity"] += capacity
        else:
            graph.add_edge(u, v, capacity=capacity)
    expected = nx.maximum_flow_value(graph, 0, n_nodes - 1)

    def solve_ours():
        network = FlowNetwork(n_nodes)
        for u, v, capacity in edges:
            network.add_edge(u, v, capacity)
        return network.max_flow(0, n_nodes - 1)

    flow = benchmark(solve_ours)
    assert flow == pytest.approx(expected)
