"""PERF-ML: throughput of the ML substrate the workloads run on.

These are not figures from the paper; they document the cost profile of the
learners and vectorizers so the real-workload numbers in EXPERIMENTS.md can be
interpreted (e.g. how much of a Census iteration is vectorization vs training).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.census import CensusConfig, generate_census_dataset
from repro.datagen.news import NewsConfig, generate_news_dataset
from repro.dsl.ie_operators import SyntheticNewsSource, Tokenizer, TokenShapeExtractor
from repro.ml.linear import LogisticRegression
from repro.ml.naive_bayes import BernoulliNaiveBayes
from repro.ml.perceptron import StructuredPerceptron
from repro.ml.vectorizer import DictVectorizer


@pytest.fixture(scope="module")
def census_features():
    dataset = generate_census_dataset(CensusConfig(n_train=3000, n_test=500, seed=1))
    rows = [
        {
            "age": float(record["age"]),
            "hours": float(record["hours_per_week"]),
            f"occ={record['occupation']}": 1.0,
            f"edu={record['education']}": 1.0,
            f"ms={record['marital_status']}": 1.0,
        }
        for record in dataset.train
    ]
    labels = dataset.train.column("target")
    return rows, labels


def test_dict_vectorizer_throughput(benchmark, census_features):
    rows, _labels = census_features
    matrix = benchmark(lambda: DictVectorizer().fit_transform(rows))
    assert matrix.shape[0] == len(rows)


def test_logistic_regression_training(benchmark, census_features):
    rows, labels = census_features
    from repro.ml.scaler import StandardScaler

    matrix = StandardScaler().fit_transform(DictVectorizer().fit_transform(rows))

    model = benchmark(lambda: LogisticRegression(reg_param=0.01, max_iter=100).fit(matrix, labels))
    accuracy = float(np.mean(model.predict(matrix) == np.asarray(labels)))
    assert accuracy > 0.7


def test_naive_bayes_training(benchmark, census_features):
    rows, labels = census_features
    matrix = DictVectorizer().fit_transform(rows)
    model = benchmark(lambda: BernoulliNaiveBayes().fit(matrix, labels))
    assert len(model.predict(matrix[:10])) == 10


def test_structured_perceptron_training(benchmark):
    config = NewsConfig(n_train_docs=60, n_test_docs=10, sentences_per_doc=4, seed=3)
    corpus = Tokenizer("docs").apply({"docs": SyntheticNewsSource(config).apply({})})
    features = TokenShapeExtractor("corpus").apply({"corpus": corpus})
    tags = [sentence.tags for sentence in corpus.train]

    model = benchmark.pedantic(
        lambda: StructuredPerceptron(epochs=3, seed=0).fit(features.train, tags), rounds=3, iterations=1
    )
    assert model.tags_ is not None


def test_tokenization_throughput(benchmark):
    dataset = generate_news_dataset(NewsConfig(n_train_docs=150, n_test_docs=30, sentences_per_doc=6, seed=4))
    corpus = benchmark(lambda: Tokenizer("docs").apply({"docs": dataset}))
    assert corpus.n_tokens() > 1000
