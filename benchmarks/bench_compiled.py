#!/usr/bin/env python3
"""Compiled hot path benchmark: fusion + plan caching + warm-started min-cut.

The paper's loop re-optimizes and re-executes a near-identical workflow every
iteration, so per-iteration fixed costs dominate once storage and scheduling
are fast.  This benchmark drives the file-backed dense census pipeline
(FileSource → CsvScanner → DenseFeaturizer → LabelExtractor →
FeatureAssembler → Learner → Predictor → Evaluator — the same pipeline
``bench_incremental.py`` uses) through an iteration trajectory twice — once
in a plain session, once with ``compiled=True`` — and measures the tail
iterations where the compiled machinery is warm:

* iteration 0 is the cold start (both sessions compute everything);
* iterations 1..K are **data-prep edits** (the DenseFeaturizer's
  ``embed_dim`` moves, the paper's purple edit): the partition-wise
  dense→assemble chain recomputes every time, which is where operator fusion
  pays — one fused task instead of ``2 × n_partitions`` chunk tasks, one
  weight-matrix generation instead of one per chunk per split, and one
  batched matmul chain instead of 32 small ones;
* the final iteration is a **model edit** (``reg_param``, the orange edit):
  the fused chain is reused from the store and the savings shift to the plan
  cache (structural hit regrafts the compiled DAG) and the warm-started
  min-cut solver.

The speedup bar is checked on iterations N≥2 (cold start and first edit
excluded), matching the acceptance criterion.  Correctness is asserted, not
assumed: per iteration, model metrics and per-node reuse verdicts must be
**bit-identical** between the two sessions, and on the data-prep iterations
the min-cut boundary must cross the same edges.  (Cut-edge *capacities* are
measured costs — cross-session wall-clock noise moves them, so capacity
bit-identity is proven with pinned costs by
``tests/test_compiled_differential.py``, not here; on the model-edit
iteration even edge membership can shift with measured costs, so the cut
comparison covers the data-prep iterations.)

The file-backed pipeline and the dataset size matter for determinism: CSV
parsing at this row count is clearly more expensive than loading pickled
chunk artifacts, so the optimizer's load-vs-recompute margins are wide and
the two sessions' measured-cost noise cannot flip a verdict.  (The synthetic
in-process source sits near that tie and flips between runs.)

Run from the repo root::

    python benchmarks/bench_compiled.py            # full trajectory
    python benchmarks/bench_compiled.py --smoke    # CI: short + tiny data

Emits ``BENCH_compiled.json`` at the repo root unless ``--no-write``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.session import HelixSession  # noqa: E402
from repro.datagen.census import CENSUS_FIELDS, CensusConfig, generate_census_dataset  # noqa: E402
from repro.dsl.operators import (  # noqa: E402
    CsvScanner,
    DenseFeaturizer,
    Evaluator,
    FeatureAssembler,
    FileSource,
    LabelExtractor,
    Learner,
    Predictor,
)
from repro.dsl.workflow import Workflow  # noqa: E402
from repro.workloads.census_workload import NUMERIC_FIELDS  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_compiled.json")

#: Required tail speedup (iterations N≥2, compiled vs plain).  The CI smoke
#: run keeps every correctness assertion but relaxes the wall-clock bar —
#: shared runners make sub-second timings too noisy for the full bar.
MIN_SPEEDUP = 1.5
MIN_SPEEDUP_SMOKE = 1.1

DENSE_FIELDS = ["age", "education_num", "capital_gain", "capital_loss", "hours_per_week"]


def build_trajectory(smoke: bool) -> Tuple[CensusConfig, int, int, int, List[Dict[str, object]]]:
    """(data config, partitions, passes, max_iter, iteration specs)."""
    if smoke:
        config = CensusConfig(n_train=600, n_test=80, seed=7)
        partitions, passes, max_iter = 16, 3, 10
        embeds = [256, 264, 272]
    else:
        config = CensusConfig(n_train=1600, n_test=160, seed=7)
        partitions, passes, max_iter = 32, 3, 15
        embeds = [384, 392, 400, 408, 416, 424, 432]
    iterations: List[Dict[str, object]] = []
    for index, embed_dim in enumerate(embeds):
        iterations.append({
            "kind": "cold-start" if index == 0 else "data-prep edit",
            "embed_dim": embed_dim,
            "reg_param": 0.1,
        })
    iterations.append({
        "kind": "model edit",
        "embed_dim": embeds[-1],
        "reg_param": 0.05,
    })
    return config, partitions, passes, max_iter, iterations


def write_feed(root: str, config: CensusConfig) -> Tuple[str, str]:
    """Generate the census dataset once and write it as CSV feed files."""
    dataset = generate_census_dataset(config)
    paths = []
    for name, collection in (("train", dataset.train), ("test", dataset.test)):
        path = os.path.join(root, f"{name}.csv")
        with open(path, "w") as handle:
            for record in collection.records():
                handle.write(",".join(str(record[field]) for field in CENSUS_FIELDS) + "\n")
        paths.append(path)
    return paths[0], paths[1]


def build_workflow(
    train_path: str, test_path: str,
    embed_dim: int, passes: int, reg_param: float, max_iter: int,
) -> Workflow:
    """The file-backed dense census pipeline at one iteration's parameters."""
    wf = Workflow("census_dense")
    data = wf.add("data", FileSource(train=train_path, test=test_path, version="v1"))
    rows = wf.add("rows", CsvScanner(data, fields=CENSUS_FIELDS, numeric_fields=NUMERIC_FIELDS))
    dense = wf.add(
        "dense",
        DenseFeaturizer(rows, fields=DENSE_FIELDS, embed_dim=embed_dim,
                        passes=passes, out_features=6),
    )
    target = wf.add("target", LabelExtractor(rows, field="target"))
    examples = wf.add("examples", FeatureAssembler(extractors=[dense], label=target))
    model = wf.add("model", Learner(examples, model_type="logistic_regression",
                                    reg_param=reg_param, max_iter=max_iter))
    predictions = wf.add("predictions", Predictor(model, examples))
    checked = wf.add("checked", Evaluator(predictions, metrics=("accuracy", "f1")))
    wf.mark_output(predictions, checked)
    return wf


def run_trajectory(
    compiled: bool,
    root: str,
    train_path: str,
    test_path: str,
    partitions: int,
    passes: int,
    max_iter: int,
    iterations: List[Dict[str, object]],
) -> List[Dict[str, object]]:
    """One session through the whole trajectory; per-iteration observations."""
    session = HelixSession(
        os.path.join(root, "ws_compiled" if compiled else "ws_plain"),
        partitions=partitions, compiled=compiled, store_backend="tiered",
    )
    observed: List[Dict[str, object]] = []
    for index, spec in enumerate(iterations):
        workflow = build_workflow(
            train_path, test_path, spec["embed_dim"], passes, spec["reg_param"], max_iter
        )
        started = time.perf_counter()
        result = session.run(workflow, description=f"it{index}: {spec['kind']}")
        wall = time.perf_counter() - started
        trace = result.trace
        observed.append({
            "wall_s": wall,
            "metrics": dict(result.report.metrics),
            "states": {name: entry.state for name, entry in trace.nodes.items()},
            "cut_pairs": sorted(
                (edge.source, edge.target) for edge in trace.cut_edges
            ),
            "fused_members": sum(
                1 for entry in trace.nodes.values() if entry.fused_group >= 0
            ),
            "plan_cache": trace.plan_cache,
            "solver_mode": trace.solver_mode,
        })
    return observed


def check(
    iterations: List[Dict[str, object]],
    plain: List[Dict[str, object]],
    compiled: List[Dict[str, object]],
    min_speedup: float,
    failures: List[str],
) -> Dict[str, object]:
    """Equivalence + speedup verdicts; returns the JSON summary."""
    rows: List[Dict[str, object]] = []
    for index, (spec, p, c) in enumerate(zip(iterations, plain, compiled)):
        if p["metrics"] != c["metrics"]:
            failures.append(f"it{index}: metrics diverge ({p['metrics']} vs {c['metrics']})")
        if p["states"] != c["states"]:
            failures.append(f"it{index}: reuse verdicts diverge ({p['states']} vs {c['states']})")
        if spec["kind"] != "model edit" and p["cut_pairs"] != c["cut_pairs"]:
            failures.append(
                f"it{index}: min-cut boundary diverges ({p['cut_pairs']} vs {c['cut_pairs']})"
            )
        if p["plan_cache"] or p["solver_mode"] or p["fused_members"]:
            failures.append(f"it{index}: plain session carries compiled-path annotations")
        rows.append({
            "iteration": index,
            "kind": spec["kind"],
            "embed_dim": spec["embed_dim"],
            "reg_param": spec["reg_param"],
            "plain_wall_s": round(p["wall_s"], 4),
            "compiled_wall_s": round(c["wall_s"], 4),
            "fused_members": c["fused_members"],
            "plan_cache": c["plan_cache"],
            "solver_mode": c["solver_mode"],
            "metrics": c["metrics"],
        })

    # The compiled machinery must actually engage, not just not-crash.
    if compiled[0]["plan_cache"] != "miss" or compiled[0]["solver_mode"] != "cold":
        failures.append("it0: expected a cold start (plan-cache miss, cold solve)")
    for index, (spec, c) in enumerate(list(zip(iterations, compiled))[1:], start=1):
        if c["plan_cache"] not in ("structural", "exact"):
            failures.append(f"it{index}: expected a plan-cache hit, got {c['plan_cache']!r}")
        if c["solver_mode"] != "warm":
            failures.append(f"it{index}: expected a warm-started solve, got {c['solver_mode']!r}")
        if spec["kind"] == "data-prep edit" and c["fused_members"] < 2:
            failures.append(f"it{index}: data-prep edit fused {c['fused_members']} nodes (< 2)")

    plain_tail = sum(p["wall_s"] for p in plain[2:])
    compiled_tail = sum(c["wall_s"] for c in compiled[2:])
    speedup = plain_tail / compiled_tail if compiled_tail > 0 else float("inf")
    if speedup < min_speedup:
        failures.append(
            f"tail speedup {speedup:.2f}x below the {min_speedup:.2f}x bar "
            f"(plain {plain_tail:.3f}s vs compiled {compiled_tail:.3f}s on iterations N>=2)"
        )
    return {
        "iterations": rows,
        "plain_tail_s": round(plain_tail, 4),
        "compiled_tail_s": round(compiled_tail, 4),
        # scripts/bench_trajectory.py gates on a lower-is-better wall clock;
        # the compiled tail is the number this benchmark exists to shrink.
        "wall_s": round(compiled_tail, 4),
        "tail_speedup": round(speedup, 3),
        "min_speedup": min_speedup,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="compiled hot path benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: short trajectory, tiny data, relaxed speedup bar")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_compiled.json and benchmarks/results/")
    args = parser.parse_args(argv)

    config, partitions, passes, max_iter, iterations = build_trajectory(args.smoke)
    min_speedup = MIN_SPEEDUP_SMOKE if args.smoke else MIN_SPEEDUP

    root = tempfile.mkdtemp(prefix="bench_compiled_")
    try:
        train_path, test_path = write_feed(root, config)
        plain = run_trajectory(
            False, root, train_path, test_path, partitions, passes, max_iter, iterations
        )
        compiled = run_trajectory(
            True, root, train_path, test_path, partitions, passes, max_iter, iterations
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)

    failures: List[str] = []
    summary = check(iterations, plain, compiled, min_speedup, failures)
    payload = {
        "benchmark": "compiled",
        "mode": "smoke" if args.smoke else "full",
        "n_train": config.n_train,
        "partitions": partitions,
        "passes": passes,
        "max_iter": max_iter,
        **summary,
        "ok": not failures,
    }
    report = json.dumps(payload, indent=2, sort_keys=True)
    print(report)
    if not args.no_write:
        try:
            with open(BENCH_JSON, "w") as handle:
                handle.write(report + "\n")
            os.makedirs(RESULTS_DIR, exist_ok=True)
            name = "compiled_smoke" if args.smoke else "compiled_comparison"
            with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
                handle.write(report + "\n")
        except OSError:
            pass

    if failures:
        print("\nFAIL:\n" + "\n".join(f"  - {failure}" for failure in failures), file=sys.stderr)
        return 1
    print("\nOK: compiled hot path benchmark passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
