"""Ablation ABL-RECOMP: exact (project-selection) reuse plans vs heuristics.

Two questions the paper's design raises:

1. How much cumulative runtime does the *exact* recomputation plan save over a
   per-node greedy heuristic and over the trivial policies, on the evaluation
   workloads?
2. Is the exact algorithm fast enough to run before every iteration (it is
   PTIME via max-flow; this measures the constant factors).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.strategies import HELIX, HELIX_GREEDY, HELIX_UNOPTIMIZED
from repro.bench.harness import run_simulated_comparison
from repro.bench.reporting import format_table
from repro.execution.simulator import SimNode, sim_dag
from repro.graph.dag import Dag
from repro.optimizer.cost_model import NodeCosts
from repro.optimizer.recomputation import greedy_plan, optimal_plan, plan_cost
from repro.workloads.simulated import census_sim_workload, ie_sim_workload, sim_defaults


def test_recomputation_policy_ablation_on_workloads(benchmark, write_result):
    """Cumulative runtime of optimal vs greedy vs no-reuse on both workloads."""

    def run():
        rows = []
        for name, iterations in (("census", census_sim_workload()), ("ie", ie_sim_workload())):
            result = run_simulated_comparison(
                f"ablation_{name}", iterations, [HELIX, HELIX_GREEDY, HELIX_UNOPTIMIZED], defaults=sim_defaults()
            )
            for system, total in result.cumulative_by_system().items():
                rows.append({"workload": name, "system": system, "cumulative_s": round(total, 1)})
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    write_result("ablation_recomputation_policies", format_table(rows))

    totals = {(row["workload"], row["system"]): row["cumulative_s"] for row in rows}
    for workload in ("census", "ie"):
        assert totals[(workload, "helix")] <= totals[(workload, "helix_greedy")] + 1e-6
        assert totals[(workload, "helix")] < totals[(workload, "helix_unopt")]


def random_layered_instance(n_layers, width, seed=0):
    """A layered DAG shaped like a wide ML pipeline, with random costs."""
    rng = np.random.default_rng(seed)
    dag = Dag(f"layered_{n_layers}x{width}")
    costs = {}
    previous_layer = []
    for layer in range(n_layers):
        current_layer = []
        for column in range(width):
            name = f"l{layer}c{column}"
            dag.add_node(name)
            costs[name] = NodeCosts(
                compute_cost=float(rng.integers(1, 60)),
                load_cost=float(rng.integers(1, 60)),
                materialized=bool(rng.random() < 0.6),
            )
            for parent in previous_layer:
                if rng.random() < 0.5:
                    dag.add_edge(parent, name)
            current_layer.append(name)
        previous_layer = current_layer
    outputs = previous_layer
    return dag, costs, outputs


@pytest.mark.parametrize("n_layers,width", [(5, 4), (10, 8), (20, 12)])
def test_optimal_planner_scales_polynomially(benchmark, n_layers, width):
    dag, costs, outputs = random_layered_instance(n_layers, width, seed=n_layers * 100 + width)
    states = benchmark(lambda: optimal_plan(dag, costs, outputs))
    assert len(states) == len(dag)
    # Sanity: the exact plan is never worse than greedy on the same instance.
    assert plan_cost(states, costs) <= plan_cost(greedy_plan(dag, costs, outputs), costs) + 1e-6


def test_greedy_planner_baseline_speed(benchmark):
    dag, costs, outputs = random_layered_instance(10, 8, seed=7)
    states = benchmark(lambda: greedy_plan(dag, costs, outputs))
    assert len(states) == len(dag)
