#!/usr/bin/env python3
"""Incremental (delta-driven) recomputation benchmark: append-mostly and rolling-window feeds.

Code changes are what Helix's signature reuse handles; this benchmark
exercises what happens when the *data* changes between iterations.  A
file-backed dense census pipeline (FileSource → CsvScanner →
DenseFeaturizer → LabelExtractor → FeatureAssembler → Learner → Predictor →
Evaluator) runs twice in one session:

* run 1 on the base files — records per-chunk input fingerprints in the
  SQLite catalog and materializes chunked artifacts;
* run 2 after the feed changed — the delta planner diffs the input chunk
  by chunk, the propagator pushes dirtiness through the DAG, and the
  optimizer prices "recompute dirty + load clean" per node.

Two scenario generators model the two streaming shapes the ROADMAP names:

* **append-mostly** — 5% more training rows appended to the same file;
  only the stretched tail chunk is dirty (statuses ``clean×(n−1), dirty``).
* **rolling-window** — the training and test windows both advance by
  exactly one chunk; every surviving chunk is clean but *shifted*
  (remap ``i → i+1``), which only content-based chunk matching can see.

Rows are pre-generated once at the largest scale and sliced into CSV files
(the census generator draws train and test from one seeded stream, so
generating at two scales would change every row).  The IE workload's
corpus operators run under SHUFFLE/COMBINE partition modes, which widen
dirtiness to whole nodes by construction — the census pipeline is where
chunk-level deltas are expressible, so both scenarios use it.

The run fails (non-zero exit) when the delta run's model metrics differ
from a cold full recompute (fresh workspace, ``incremental=False``) in any
digit, or when the delta run recomputed more than 30% of the chunks of the
delta-eligible nodes (the chunk-scope nodes the propagator resolved; nodes
widened to whole-node dirtiness — model training and everything after it —
are recomputed in full by design and reported separately).

Run from the repo root::

    python benchmarks/bench_incremental.py            # append + rolling, full scale
    python benchmarks/bench_incremental.py --smoke    # CI: append only, tiny data

Emits ``BENCH_incremental.json`` at the repo root (the start of the
``BENCH_*.json`` perf trajectory) unless ``--no-write`` is given.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.session import HelixSession  # noqa: E402
from repro.datagen.census import CENSUS_FIELDS, CensusConfig, generate_census_dataset  # noqa: E402
from repro.dsl.operators import (  # noqa: E402
    CsvScanner,
    DenseFeaturizer,
    Evaluator,
    FeatureAssembler,
    FileSource,
    LabelExtractor,
    Learner,
    Predictor,
)
from repro.dsl.workflow import Workflow  # noqa: E402
from repro.workloads.census_workload import NUMERIC_FIELDS  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_incremental.json")

#: Chunk fraction the delta run may recompute on delta-eligible nodes
#: (the acceptance bar: 5% appended rows over 16 chunks dirties 1/16).
MAX_DELTA_CHUNK_FRACTION = 0.30


def _rows_to_lines(records) -> List[str]:
    return [",".join(str(record[field]) for field in CENSUS_FIELDS) for record in records]


def _write_feed(path: str, lines: List[str]) -> str:
    """Write ``lines`` as the feed file; returns a content stamp for FileSource."""
    body = "\n".join(lines) + "\n"
    with open(path, "w") as handle:
        handle.write(body)
    return hashlib.sha256(body.encode()).hexdigest()[:16]


def build_feed_workflow(train_path: str, test_path: str, version: str,
                        embed_dim: int, passes: int) -> Workflow:
    """The file-backed linear dense census pipeline."""
    wf = Workflow("census_feed")
    data = wf.add("data", FileSource(train=train_path, test=test_path, version=version))
    rows = wf.add("rows", CsvScanner(data, fields=CENSUS_FIELDS, numeric_fields=NUMERIC_FIELDS))
    dense = wf.add(
        "dense",
        DenseFeaturizer(
            rows,
            fields=["age", "education_num", "capital_gain", "capital_loss", "hours_per_week"],
            embed_dim=embed_dim,
            passes=passes,
            out_features=6,
        ),
    )
    target = wf.add("target", LabelExtractor(rows, field="target"))
    examples = wf.add("examples", FeatureAssembler(extractors=[dense], label=target))
    model = wf.add("model", Learner(examples, model_type="logistic_regression",
                                    reg_param=0.1, max_iter=40))
    predictions = wf.add("predictions", Predictor(model, examples))
    checked = wf.add("checked", Evaluator(predictions, metrics=("accuracy", "f1")))
    wf.mark_output(predictions, checked)
    return wf


# ---------------------------------------------------------------------------
# Scenario generators
# ---------------------------------------------------------------------------
def append_scenario(scale: int, partitions: int) -> Dict[str, object]:
    """Base feed of ``scale`` training rows, then 5% more rows appended."""
    appended = max(1, scale // 20)
    n_test = max(partitions * 10, scale // 10)
    dataset = generate_census_dataset(
        CensusConfig(n_train=scale + appended, n_test=n_test, seed=7)
    )
    train = _rows_to_lines(dataset.train.records())
    test = _rows_to_lines(dataset.test.records())
    return {
        "name": "append",
        "description": f"append {appended} rows (5%) to a {scale}-row feed",
        "base": (train[:scale], test),
        "changed": (train, test),
        "expected_mode": "append",
    }


def rolling_scenario(scale: int, partitions: int) -> Dict[str, object]:
    """Train and test windows both advance by exactly one chunk of rows."""
    train_step = scale // partitions
    n_test = partitions * max(10, scale // (10 * partitions))
    test_step = n_test // partitions
    dataset = generate_census_dataset(
        CensusConfig(n_train=scale + train_step, n_test=n_test + test_step, seed=7)
    )
    train = _rows_to_lines(dataset.train.records())
    test = _rows_to_lines(dataset.test.records())
    return {
        "name": "rolling",
        "description": f"advance a {scale}-row window by one chunk ({train_step} rows)",
        "base": (train[:scale], test[:n_test]),
        "changed": (train[train_step:], test[test_step:]),
        "expected_mode": "rolling",
    }


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------
def delta_chunk_stats(result) -> Dict[str, object]:
    """Recomputed-chunk accounting for the delta run, split by delta scope."""
    trace = result.trace
    eligible_total = eligible_computed = 0
    widened_total = widened_computed = 0
    verdicts: Dict[str, str] = {}
    for name, entry in trace.nodes.items():
        stats = result.report.node_stats.get(name)
        if stats is None:
            continue
        chunks = max(stats.chunks_computed + stats.chunks_loaded, entry.delta_chunks_total)
        if not chunks:
            continue
        if entry.delta_strategy:
            verdicts[name] = entry.delta_strategy
            eligible_total += chunks
            eligible_computed += stats.chunks_computed
        else:
            widened_total += chunks
            widened_computed += stats.chunks_computed
    fraction = eligible_computed / eligible_total if eligible_total else 1.0
    return {
        "eligible_chunks": eligible_total,
        "eligible_recomputed": eligible_computed,
        "eligible_recompute_fraction": round(fraction, 4),
        "widened_chunks": widened_total,
        "widened_recomputed": widened_computed,
        "verdicts": verdicts,
    }


def run_scenario(scenario: Dict[str, object], partitions: int,
                 embed_dim: int, passes: int) -> Dict[str, object]:
    """One scenario end to end: base run, delta run, cold comparison run."""
    root = tempfile.mkdtemp(prefix=f"bench_incr_{scenario['name']}_")
    try:
        train_path = os.path.join(root, "train.csv")
        test_path = os.path.join(root, "test.csv")

        base_train, base_test = scenario["base"]
        version = _write_feed(train_path, base_train)
        version += _write_feed(test_path, base_test)
        session = HelixSession(
            os.path.join(root, "ws"), partitions=partitions,
            store_backend="tiered", memory_tier_mb=512,
        )
        build = lambda v: build_feed_workflow(train_path, test_path, v, embed_dim, passes)
        started = time.perf_counter()
        session.run(build(version), description=f"{scenario['name']}: base feed")
        base_wall = time.perf_counter() - started

        changed_train, changed_test = scenario["changed"]
        version = _write_feed(train_path, changed_train)
        version += _write_feed(test_path, changed_test)
        started = time.perf_counter()
        delta_run = session.run(build(version), description=f"{scenario['name']}: changed feed")
        delta_wall = time.perf_counter() - started

        cold = HelixSession(os.path.join(root, "cold"), partitions=partitions,
                            incremental=False)
        started = time.perf_counter()
        cold_run = cold.run(build(version))
        cold_wall = time.perf_counter() - started

        stats = delta_chunk_stats(delta_run)
        deltas = [
            {
                "input": entry.node or entry.input_key,
                "mode": entry.mode,
                "clean": entry.clean_chunks,
                "dirty": entry.dirty_chunks,
                "new": entry.new_chunks,
                "chunks": entry.chunk_count,
            }
            for entry in (delta_run.trace.deltas if delta_run.trace else [])
        ]
        return {
            "scenario": scenario["name"],
            "description": scenario["description"],
            "partitions": partitions,
            "detected": deltas,
            "expected_mode": scenario["expected_mode"],
            **stats,
            "delta_metrics": dict(delta_run.report.metrics),
            "cold_metrics": dict(cold_run.report.metrics),
            "base_wall_s": round(base_wall, 4),
            "delta_wall_s": round(delta_wall, 4),
            "cold_wall_s": round(cold_wall, 4),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def check_scenario(result: Dict[str, object], failures: List[str]) -> None:
    name = result["scenario"]
    if result["delta_metrics"] != result["cold_metrics"]:
        failures.append(f"{name}: delta-run metrics differ from cold full recompute")
    if not result["detected"]:
        failures.append(f"{name}: no input delta was detected")
    elif all(entry["mode"] != result["expected_mode"] for entry in result["detected"]):
        failures.append(
            f"{name}: expected a {result['expected_mode']!r} delta, "
            f"detected {[entry['mode'] for entry in result['detected']]}"
        )
    if result["eligible_chunks"] == 0:
        failures.append(f"{name}: no node was delta-eligible (nothing chunk-diffable)")
    elif result["eligible_recompute_fraction"] > MAX_DELTA_CHUNK_FRACTION:
        failures.append(
            f"{name}: recomputed {result['eligible_recompute_fraction']:.1%} of "
            f"delta-eligible chunks (> {MAX_DELTA_CHUNK_FRACTION:.0%} bar)"
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="incremental recomputation benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: append scenario only, tiny data")
    parser.add_argument("--scale", type=int, default=6400,
                        help="training rows in the base feed (full mode)")
    parser.add_argument("--partitions", type=int, default=16, help="chunk count")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_incremental.json and benchmarks/results/")
    args = parser.parse_args(argv)

    if args.smoke:
        scale, embed_dim, passes = 1600, 96, 4
        scenarios = [append_scenario(scale, args.partitions)]
    else:
        scale, embed_dim, passes = args.scale, 192, 6
        scenarios = [
            append_scenario(scale, args.partitions),
            rolling_scenario(scale, args.partitions),
        ]

    failures: List[str] = []
    results: List[Dict[str, object]] = []
    for scenario in scenarios:
        result = run_scenario(scenario, args.partitions, embed_dim, passes)
        results.append(result)
        check_scenario(result, failures)

    payload = {
        "benchmark": "incremental",
        "mode": "smoke" if args.smoke else "full",
        "scale": scale,
        "partitions": args.partitions,
        "max_delta_chunk_fraction": MAX_DELTA_CHUNK_FRACTION,
        "scenarios": results,
        "ok": not failures,
    }
    report = json.dumps(payload, indent=2, sort_keys=True)
    print(report)
    if not args.no_write:
        try:
            with open(BENCH_JSON, "w") as handle:
                handle.write(report + "\n")
            os.makedirs(RESULTS_DIR, exist_ok=True)
            name = "incremental_smoke" if args.smoke else "incremental_comparison"
            with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
                handle.write(report + "\n")
        except OSError:
            pass

    if failures:
        print("\nFAIL:\n" + "\n".join(f"  - {failure}" for failure in failures), file=sys.stderr)
        return 1
    print("\nOK: incremental benchmark passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
