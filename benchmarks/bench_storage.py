#!/usr/bin/env python3
"""Storage-layer benchmark: baseline disk-pickle vs the tiered, codec-aware store.

Every artifact used to take one path — pickle to a flat directory — so a hot
iterative loop paid a full disk read plus deserialization for every reused
artifact, every iteration.  The tiered store keeps the hot set in a
capacity-bounded memory tier (write-through, promote-on-read) with a decoded
hot-value cache on top, and the codec registry encodes NumPy-style artifacts
through raw-buffer fast paths.  This benchmark quantifies both axes on the
iterative census (and, in full mode, IE) workloads:

* ``disk-pickle``  — flat disk backend, everything pickled (the old engine);
* ``tiered-codec`` — memory tier over sharded disk, per-value codec choice.

Phases per engine, in a fresh workspace:

1. **cold** — run the workload's full iteration sequence once, measuring
   cumulative wall time and per-iteration model metrics;
2. **warm** — re-run the final iteration's workflow ``--warm-runs`` times.
   Every node now LOADs (or prunes); the summed per-node load time of the
   best warm run is the "warm load" number the acceptance bar tests:
   tiered must beat disk-pickle by >= 1.3x.

Two ride-along checks guard the rest of the system on the tiered store:
partitioned chunk artifacts (dense census, ``partitions=2``) and
multi-tenant shared-cache attribution must behave exactly as on disk.

Run from the repo root::

    python benchmarks/bench_storage.py            # full comparison (census + IE)
    python benchmarks/bench_storage.py --smoke    # CI: census only, tiny data
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.session import HelixSession  # noqa: E402
from repro.datagen.census import CensusConfig  # noqa: E402
from repro.datagen.news import NewsConfig  # noqa: E402
from repro.workloads.census_workload import build_dense_census_workflow, census_workload  # noqa: E402
from repro.workloads.ie_workload import ie_workload  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: The two storage engines under comparison.
ENGINES = {
    "disk-pickle": dict(store_backend="disk", codec="pickle"),
    "tiered-codec": dict(store_backend="tiered", memory_tier_mb=256, codec="auto"),
}

#: Acceptance bar: tiered warm loads must beat disk-pickle by this factor.
WARM_LOAD_BAR = 1.3


def census_spec(scale: int, iterations: Optional[int]):
    return census_workload(
        CensusConfig(n_train=scale, n_test=max(100, scale // 5), seed=11), n_iterations=iterations
    )


def ie_spec(scale: int, iterations: Optional[int]):
    return ie_workload(
        NewsConfig(
            n_train_docs=max(16, scale // 25), n_test_docs=max(6, scale // 100),
            sentences_per_doc=5, seed=11,
        ),
        n_iterations=iterations,
    )


def run_engine(spec, engine: str, warm_runs: int) -> Dict[str, object]:
    """Cold sequence + warm re-runs of the final iteration for one engine."""
    session = HelixSession(tempfile.mkdtemp(prefix=f"bench_store_{engine}_"), **ENGINES[engine])
    started = time.perf_counter()
    metrics_per_iteration: List[Dict[str, float]] = []
    for step in spec.iterations:
        result = session.run(step.build(), description=step.description)
        metrics_per_iteration.append(dict(result.report.metrics))
    cold_wall = time.perf_counter() - started

    final = spec.iterations[-1]
    warm = []
    for _ in range(max(1, warm_runs)):
        warm_started = time.perf_counter()
        report = session.run(final.build(), description="warm rerun").report
        warm.append(
            {
                "wall_s": time.perf_counter() - warm_started,
                "load_s": sum(stats.load_time for stats in report.node_stats.values()),
                "loads": sum(1 for stats in report.node_stats.values() if stats.load_time > 0),
                "reuse": report.reuse_fraction(),
                "metrics": dict(report.metrics),
            }
        )
    best_warm = min(warm, key=lambda run: run["load_s"])
    info = session.store.storage_info()
    return {
        "cold_wall_s": round(cold_wall, 4),
        "metrics_per_iteration": metrics_per_iteration,
        "warm_load_s": round(best_warm["load_s"], 6),
        "warm_wall_s": round(best_warm["wall_s"], 4),
        "warm_loads": best_warm["loads"],
        "warm_reuse": round(best_warm["reuse"], 3),
        "warm_metrics": best_warm["metrics"],
        "store": {
            "backend": info["backend"],
            "artifacts": info["artifacts"],
            "used_bytes": info["used_bytes"],
            "by_codec": info["by_codec"],
            **({"tiering": info["tiers"]["tiering"]} if "tiers" in info else {}),
        },
    }


def storage_comparison(workload: str, spec, warm_runs: int) -> Dict[str, object]:
    engines = {engine: run_engine(spec, engine, warm_runs) for engine in ENGINES}
    baseline = engines["disk-pickle"]
    tiered = engines["tiered-codec"]
    warm_speedup = (
        baseline["warm_load_s"] / tiered["warm_load_s"] if tiered["warm_load_s"] > 0 else float("inf")
    )
    return {
        "workload": workload,
        "iterations": len(spec.iterations),
        "engines": engines,
        "warm_load_speedup": round(warm_speedup, 3),
        "cold_speedup": round(baseline["cold_wall_s"] / tiered["cold_wall_s"], 3)
        if tiered["cold_wall_s"]
        else float("inf"),
    }


def check_partitioned_chunks(scale: int) -> Dict[str, object]:
    """Partitioned chunk artifacts must work unchanged on the tiered store."""
    config = CensusConfig(n_train=scale, n_test=max(80, scale // 5), seed=9)

    def build():
        return build_dense_census_workflow(config, embed_dim=32, passes=2)

    serial = HelixSession(tempfile.mkdtemp(prefix="bench_store_serial_"))
    baseline_metrics = serial.run(build()).report.metrics

    workspace = tempfile.mkdtemp(prefix="bench_store_part_")
    first_session = HelixSession(workspace, partitions=2, **ENGINES["tiered-codec"])
    first = first_session.run(build())
    rerun = HelixSession(workspace, partitions=2, **ENGINES["tiered-codec"]).run(build())
    chunk_entries = [signature for signature in first_session.store.catalog() if "#p" in signature]
    return {
        "metrics_match_serial": dict(first.report.metrics) == dict(baseline_metrics),
        "chunk_artifacts": len(chunk_entries),
        "rerun_reuse": round(rerun.report.reuse_fraction(), 3),
        "rerun_metrics_match": dict(rerun.report.metrics) == dict(baseline_metrics),
    }


def check_multi_tenant(scale: int) -> Dict[str, object]:
    """Shared-cache attribution must work unchanged on the tiered store."""
    from repro.service import CacheConfig, ServiceConfig, WorkflowService

    spec = census_spec(scale, 2)
    config = ServiceConfig(
        n_workers=1,
        store_backend="tiered",
        memory_tier_mb=128,
        codec="auto",
        cache=CacheConfig(),
    )
    with WorkflowService(tempfile.mkdtemp(prefix="bench_store_svc_"), config) as service:
        for step in spec.iterations:
            for tenant in ("alice", "bob"):
                service.run_sync(tenant, build=step.build, description=step.description)
        snapshot = service.cache.snapshot()
    return {
        "backend": snapshot["backend"],
        "cross_tenant_hits": snapshot["cross_tenant_hits"],
        "bytes_by_tenant": snapshot["bytes_by_tenant"],
        "tiering": snapshot.get("tiers", {}).get("tiering", {}),
    }


def render(title: str, payload: Dict[str, object]) -> str:
    return f"===== {title} =====\n{json.dumps(payload, indent=2)}"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="storage engine benchmark")
    parser.add_argument("--smoke", action="store_true", help="CI mode: census only, tiny data")
    parser.add_argument("--scale", type=int, default=4000, help="census training rows (full mode)")
    parser.add_argument("--iterations", type=int, default=None, help="iterations (default: full sequence)")
    parser.add_argument("--warm-runs", type=int, default=3, help="warm re-runs of the final iteration")
    parser.add_argument("--require-speedup", type=float, default=None,
                        help=f"override the {WARM_LOAD_BAR}x warm-load bar")
    parser.add_argument("--no-write", action="store_true", help="skip writing benchmarks/results/")
    args = parser.parse_args(argv)

    bar = args.require_speedup if args.require_speedup is not None else WARM_LOAD_BAR
    scale = 1200 if args.smoke else args.scale
    iterations = (4 if args.smoke else args.iterations)

    lines: List[str] = [f"storage engines: {json.dumps({k: v for k, v in ENGINES.items()})}, warm bar {bar}x"]
    failures: List[str] = []

    comparisons = [("census", census_spec(scale, iterations))]
    if not args.smoke:
        comparisons.append(("ie", ie_spec(scale, iterations)))

    for workload, spec in comparisons:
        comparison = storage_comparison(workload, spec, args.warm_runs)
        lines.append(render(f"iterative {workload}: disk-pickle vs tiered-codec", comparison))
        engines = comparison["engines"]
        if engines["disk-pickle"]["metrics_per_iteration"] != engines["tiered-codec"]["metrics_per_iteration"]:
            failures.append(f"{workload}: model metrics differ between storage engines")
        if engines["disk-pickle"]["warm_loads"] == 0:
            failures.append(f"{workload}: warm baseline rerun performed no loads (nothing materialized?)")
        if comparison["warm_load_speedup"] < bar:
            failures.append(
                f"{workload}: tiered warm-load speedup {comparison['warm_load_speedup']}x "
                f"is below the {bar}x bar"
            )

    partitioned = check_partitioned_chunks(max(400, scale // 3))
    lines.append(render("partitioned chunk artifacts on TieredStore", partitioned))
    if not partitioned["metrics_match_serial"] or not partitioned["rerun_metrics_match"]:
        failures.append("partitioned: metrics drift on the tiered store")
    if partitioned["chunk_artifacts"] == 0:
        failures.append("partitioned: no chunk artifacts were persisted on the tiered store")
    if partitioned["rerun_reuse"] <= 0:
        failures.append("partitioned: chunk families were not reused across sessions")

    tenants = check_multi_tenant(max(300, scale // 4))
    lines.append(render("multi-tenant shared cache on TieredStore", tenants))
    if not tenants["bytes_by_tenant"]:
        failures.append("multi-tenant: cache attribution is empty on the tiered store")
    if tenants["cross_tenant_hits"] <= 0:
        failures.append("multi-tenant: no cross-tenant hits through the tiered cache")

    report = "\n\n".join(lines)
    print(report)
    if not args.no_write:
        try:
            os.makedirs(RESULTS_DIR, exist_ok=True)
            name = "storage_smoke" if args.smoke else "storage_comparison"
            with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
                handle.write(report + "\n")
        except OSError:
            pass

    if failures:
        print("\nFAIL:\n" + "\n".join(f"  - {failure}" for failure in failures), file=sys.stderr)
        return 1
    print("\nOK: storage benchmark passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
