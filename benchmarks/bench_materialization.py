"""Ablation ABL-MAT: materialization policies and storage budgets.

Sweeps the materialization policy (the paper's online cost model,
materialize-all, materialize-none, and the offline knapsack oracle) and the
storage budget on the Census workload, reporting cumulative runtime and peak
storage — the trade-off at the heart of the materialization problem.
"""

from __future__ import annotations

import pytest

from repro.baselines.strategies import ExecutionStrategy
from repro.bench.harness import run_simulated_comparison
from repro.bench.reporting import format_table
from repro.workloads.simulated import census_sim_workload, sim_defaults

GB = 1e9

POLICY_STRATEGIES = [
    ExecutionStrategy(name="helix_online", recomputation="optimal", materialization="helix_online"),
    ExecutionStrategy(name="materialize_all", recomputation="optimal", materialization="all"),
    ExecutionStrategy(name="materialize_none", recomputation="optimal", materialization="none"),
    ExecutionStrategy(name="knapsack_oracle", recomputation="optimal", materialization="knapsack_oracle"),
]


def sweep_policies(storage_budget=float("inf")):
    result = run_simulated_comparison(
        "materialization_policies",
        census_sim_workload(),
        POLICY_STRATEGIES,
        storage_budget=storage_budget,
        defaults=sim_defaults(),
    )
    rows = []
    for system, reports in result.reports_by_system.items():
        rows.append(
            {
                "policy": system,
                "cumulative_s": round(sum(r.total_runtime for r in reports), 1),
                "peak_storage_GB": round(max(r.storage_used for r in reports) / GB, 2),
            }
        )
    return rows


def test_materialization_policy_comparison(benchmark, write_result):
    rows = benchmark.pedantic(sweep_policies, rounds=2, iterations=1)
    write_result("ablation_materialization_policies", format_table(rows))
    by_policy = {row["policy"]: row for row in rows}

    # Never materializing forfeits all reuse; the online policy beats it by a lot.
    assert by_policy["helix_online"]["cumulative_s"] < 0.5 * by_policy["materialize_none"]["cumulative_s"]
    # The online policy never stores more than materialize-all.
    assert by_policy["helix_online"]["peak_storage_GB"] <= by_policy["materialize_all"]["peak_storage_GB"] + 1e-9


def test_storage_budget_sweep(benchmark, write_result):
    """Cumulative runtime of the online policy as the storage budget shrinks."""

    budgets = [float("inf"), 8 * GB, 4 * GB, 2 * GB, 1 * GB, 0.25 * GB, 0.0]

    def run_sweep():
        rows = []
        for budget in budgets:
            result = run_simulated_comparison(
                "budget_sweep",
                census_sim_workload(),
                [ExecutionStrategy(name="helix", recomputation="optimal", materialization="helix_online")],
                storage_budget=budget,
                defaults=sim_defaults(),
            )
            reports = result.reports_by_system["helix"]
            rows.append(
                {
                    "budget_GB": "unlimited" if budget == float("inf") else round(budget / GB, 2),
                    "cumulative_s": round(sum(r.total_runtime for r in reports), 1),
                    "peak_storage_GB": round(max(r.storage_used for r in reports) / GB, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    write_result("ablation_storage_budget_sweep", format_table(rows))

    cumulative = [row["cumulative_s"] for row in rows]
    storage = [row["peak_storage_GB"] for row in rows]
    # Peak storage tracks the budget downward.
    assert all(later <= earlier + 1e-6 for earlier, later in zip(storage, storage[1:]))
    # A zero budget degenerates to no reuse at all: far slower than unlimited.
    # (Intermediate budgets are not strictly monotone — skipping a large artifact
    # also skips its write cost — which is itself a finding worth reporting.)
    assert cumulative[-1] > 2.0 * cumulative[0]
